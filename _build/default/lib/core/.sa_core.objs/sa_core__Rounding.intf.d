lib/core/rounding.mli: Allocation Instance Lp_relaxation Sa_util
