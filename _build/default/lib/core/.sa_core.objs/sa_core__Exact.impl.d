lib/core/exact.ml: Allocation Array Greedy Instance List Sa_val
