lib/core/hardness.mli: Instance Sa_graph Sa_util
