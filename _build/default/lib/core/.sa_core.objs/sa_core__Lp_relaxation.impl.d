lib/core/lp_relaxation.ml: Array Instance List Sa_graph Sa_lp Sa_util Sa_val
