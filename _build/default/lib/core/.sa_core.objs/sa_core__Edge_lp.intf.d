lib/core/edge_lp.mli: Sa_graph
