lib/core/serialize.mli: Allocation Instance
