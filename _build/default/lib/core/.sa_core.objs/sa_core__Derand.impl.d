lib/core/derand.ml: Allocation Array Instance Rounding
