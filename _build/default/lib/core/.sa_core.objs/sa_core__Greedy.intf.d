lib/core/greedy.mli: Allocation Instance Lp_relaxation
