lib/core/oracle_solver.ml: Array Float Hashtbl Instance List Lp_relaxation Sa_graph Sa_lp Sa_util Sa_val
