lib/core/instance.ml: Array Sa_graph Sa_val
