lib/core/lp_relaxation.mli: Allocation Instance Sa_lp Sa_val
