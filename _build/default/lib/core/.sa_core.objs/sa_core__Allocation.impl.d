lib/core/allocation.ml: Array Format Instance List Sa_val
