(** Problem instances: combinatorial auction with conflict graph (Problem 1).

    An instance bundles the conflict structure (unweighted graph, edge-
    weighted graph, or one graph per channel — Section 6's asymmetric
    channels), the number of channels [k], one valuation per bidder, the
    ordering π, and the inductive-independence parameter ρ used in the LP
    constraints (an upper bound on ρ(π), usually the model's theoretical
    bound). *)

type conflict =
  | Unweighted of Sa_graph.Graph.t
  | Edge_weighted of Sa_graph.Weighted.t
  | Per_channel of Sa_graph.Graph.t array
      (** asymmetric channels: graph [j] constrains channel [j] *)
  | Per_channel_weighted of Sa_graph.Weighted.t array
      (** Section 6 in full generality: a different edge-weight function
          [w_j] per channel *)

type t = private {
  conflict : conflict;
  k : int;
  bidders : Sa_val.Valuation.t array;
  ordering : Sa_graph.Ordering.t;
  rho : float;
  available : Sa_val.Bundle.t array;
      (** per-bidder channel availability: bidder [v] may only be allocated
          channels inside [available.(v)].  Models primary-user protection
          zones ("a primary user might allow access to a channel only for a
          subset of devices", §1).  Defaults to all channels. *)
}

val make :
  conflict:conflict ->
  k:int ->
  bidders:Sa_val.Valuation.t array ->
  ordering:Sa_graph.Ordering.t ->
  rho:float ->
  t
(** Validates: all sizes agree, [1 ≤ k ≤ 62] (and [|Per_channel| = k]),
    [rho ≥ 1], every valuation well-formed for [k].  Availability defaults
    to all channels for everyone; see {!with_available}. *)

val with_available : t -> Sa_val.Bundle.t array -> t
(** Replace the availability masks (validated against [k] and [n]). *)

val channel_available : t -> bidder:int -> channel:int -> bool

val restrict_bundle : t -> bidder:int -> Sa_val.Bundle.t -> Sa_val.Bundle.t
(** Intersect with the bidder's availability mask. *)

val n : t -> int
(** Number of bidders. *)

val wbar : t -> channel:int -> int -> int -> float
(** Symmetrised conflict weight between two bidders as seen by [channel]:
    1/0 for unweighted graphs, [w̄] for edge-weighted ones, and the
    channel's own graph for [Per_channel]. *)

val is_asymmetric : t -> bool

val independent_on_channel : t -> channel:int -> int list -> bool
(** Whether a set of bidders may share [channel]: graph independence,
    weighted independence, or independence in [G_channel]. *)

val max_welfare_upper_bound : t -> float
(** [Σ_v max_T b_{v,T}] — a crude bound used for pruning and sanity checks. *)
