module Graph = Sa_graph.Graph
module Model = Sa_lp.Model
module Simplex = Sa_lp.Simplex

type result = {
  lp_value : float;
  fractional : float array;
  rounded : int list;
  rounded_value : float;
}

let solve g ~weights =
  let n = Graph.n g in
  if Array.length weights <> n then invalid_arg "Edge_lp.solve: weights size mismatch";
  Array.iter (fun w -> if w < 0.0 then invalid_arg "Edge_lp.solve: negative weight") weights;
  let m = Model.create Simplex.Maximize in
  let vars = Array.init n (fun v -> Model.add_var m ~obj:weights.(v)) in
  Array.iter (fun var -> ignore (Model.add_row m [ (var, 1.0) ] Simplex.Le 1.0)) vars;
  Graph.iter_edges g (fun u v ->
      ignore (Model.add_row m [ (vars.(u), 1.0); (vars.(v), 1.0) ] Simplex.Le 1.0));
  let sol = Model.solve m in
  (match sol.Model.status with
  | Simplex.Optimal -> ()
  | _ -> failwith "Edge_lp.solve: LP failed");
  let fractional = Array.init n (fun v -> sol.Model.value vars.(v)) in
  (* LP-guided greedy: consider vertices by decreasing x_v * b_v. *)
  let order = Array.init n (fun v -> v) in
  Array.sort
    (fun a b -> compare (fractional.(b) *. weights.(b)) (fractional.(a) *. weights.(a)))
    order;
  let chosen = ref [] in
  Array.iter
    (fun v ->
      if
        weights.(v) *. fractional.(v) > 0.0
        && List.for_all (fun u -> not (Graph.mem_edge g u v)) !chosen
      then chosen := v :: !chosen)
    order;
  let rounded_value = List.fold_left (fun acc v -> acc +. weights.(v)) 0.0 !chosen in
  { lp_value = sol.Model.objective; fractional; rounded = !chosen; rounded_value }
