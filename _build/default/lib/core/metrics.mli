(** Allocation quality metrics beyond raw welfare.

    Regulators care about more than the objective: how intensively is the
    spectrum reused, how evenly are winners treated, which channels carry
    the value.  Used by the examples, the market simulation and E-series
    reporting. *)

type t = {
  welfare : float;
  winners : int;
  channels_used : int;  (** channels with ≥ 1 holder *)
  mean_holders_per_channel : float;  (** spatial-reuse factor *)
  max_holders_per_channel : int;
  channel_welfare : float array;
      (** per-channel welfare attribution: a winner's value split equally
          over its channels *)
  winner_value_fairness : float;  (** Jain's index over winners' values *)
  bundle_size_mean : float;  (** mean |S(v)| over winners *)
}

val compute : Instance.t -> Allocation.t -> t

val pp : Format.formatter -> t -> unit
(** Compact multi-line report. *)
