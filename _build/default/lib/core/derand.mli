(** Derandomization by pairwise independence (Section 5 remark).

    The Theorem-3 analysis uses randomness only through (a) the marginal law
    of each bidder's rounded bundle and (b) a first-moment (Markov) bound on
    a sum over *pairs* of bidders — so pairwise-independent choices preserve
    the expectation bound.  This module replaces the independent draws with
    the classic affine family over a prime field:

    [h_{a,b}(v) = ((a·v + b) mod p) / p ∈ \[0,1)],  [(a,b) ∈ Z_p × Z_p],

    which is pairwise independent across bidders, and *enumerates the whole
    seed family*, keeping the best feasible allocation.  Since the family
    realises the expectation bound on average, its best member is
    deterministic and at least as good — up to the [1/p] quantisation of the
    rounding probabilities, which the enumeration makes explicit rather than
    hidden in an ε.

    Cost: [p²] rounding passes; use on small-to-moderate instances (the
    Lavi–Swamy decomposition, experiment E6, is the intended consumer). *)

val prime : int
(** 101 — the field size; probabilities are quantised to multiples of 1/101. *)

val algorithm1_derand : Instance.t -> Lp_relaxation.fractional -> Allocation.t
(** Deterministic counterpart of {!Rounding.algorithm1} (unweighted
    instances): enumerates the seed family and returns the best feasible
    allocation found.  Always feasible. *)

val algorithm23_derand : Instance.t -> Lp_relaxation.fractional -> Allocation.t
(** Deterministic counterpart of Algorithms 2+3 (edge-weighted instances). *)
