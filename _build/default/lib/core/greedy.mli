(** Greedy baselines.

    The paper has no greedy competitor, but any credible evaluation needs
    one (experiment E8): these are the natural first-fit heuristics a
    practitioner would try before an LP-based method. *)

val by_value : Instance.t -> Allocation.t
(** Process bidders by decreasing best-bundle value; give each bidder the
    most valuable of its support bundles that keeps the allocation feasible
    (first-fit over its bids, best first). *)

val by_density : Instance.t -> Allocation.t
(** Same, ordering bids by value per channel ([b/|T|]) — tends to leave
    room for more winners. *)

val from_lp : Instance.t -> Lp_relaxation.fractional -> Allocation.t
(** Deterministic LP-guided greedy: process columns by decreasing
    [b_{v,T}·x_{v,T}], allocate when feasible.  Used as the derandomised
    companion of the randomized rounding. *)
