module Bundle = Sa_val.Bundle

type t = {
  welfare : float;
  winners : int;
  channels_used : int;
  mean_holders_per_channel : float;
  max_holders_per_channel : int;
  channel_welfare : float array;
  winner_value_fairness : float;
  bundle_size_mean : float;
}

let compute inst alloc =
  let k = inst.Instance.k in
  let holders = Array.make k 0 in
  let channel_welfare = Array.make k 0.0 in
  let winner_values = ref [] in
  let bundle_sizes = ref [] in
  Array.iteri
    (fun v bundle ->
      if not (Bundle.is_empty bundle) then begin
        let value = Allocation.bidder_value inst alloc v in
        let size = Bundle.card bundle in
        winner_values := value :: !winner_values;
        bundle_sizes := float_of_int size :: !bundle_sizes;
        Bundle.iter
          (fun j ->
            holders.(j) <- holders.(j) + 1;
            channel_welfare.(j) <- channel_welfare.(j) +. (value /. float_of_int size))
          bundle
      end)
    alloc;
  let winners = List.length !winner_values in
  let channels_used = Array.fold_left (fun acc h -> if h > 0 then acc + 1 else acc) 0 holders in
  let total_holders = Array.fold_left ( + ) 0 holders in
  {
    welfare = Allocation.value inst alloc;
    winners;
    channels_used;
    mean_holders_per_channel = float_of_int total_holders /. float_of_int k;
    max_holders_per_channel = Array.fold_left max 0 holders;
    channel_welfare;
    winner_value_fairness = Sa_util.Stats.jain_index (Array.of_list !winner_values);
    bundle_size_mean =
      (if winners = 0 then 0.0 else Sa_util.Stats.mean (Array.of_list !bundle_sizes));
  }

let pp fmt m =
  Format.fprintf fmt
    "welfare %.2f | winners %d | channels used %d | reuse %.2f holders/channel \
     (max %d) | winner fairness %.3f | mean bundle %.2f@."
    m.welfare m.winners m.channels_used m.mean_holders_per_channel
    m.max_holders_per_channel m.winner_value_fairness m.bundle_size_mean;
  Array.iteri
    (fun j w -> if w > 0.0 then Format.fprintf fmt "  channel %d: welfare %.2f@." j w)
    m.channel_welfare
