(** Workload generators from the paper's hardness constructions.

    The lower bounds (Theorems 5, 6, 14) are reductions from independent
    set; their gadgets double as stress workloads on which the algorithms'
    guarantees are tight-ish, which the experiments probe empirically. *)

val clique_auction : n:int -> Instance.t
(** k = 1, unit valuations on the clique — the edge-LP integrality-gap
    witness (§2.1): edge-LP value n/2, true optimum 1, our LP optimum ≤ ρ+1
    with the trivial ordering. *)

val theorem14_instance :
  Sa_graph.Graph.t -> k:int -> Instance.t * Sa_graph.Ordering.t
(** The Theorem-14 construction over a (bounded-degree) graph [G]: its
    edges are split into [k] per-channel graphs along a degeneracy ordering
    so that each has backward degree ≤ ⌈d_back/k⌉; every bidder places a
    single XOR bid of value 1 on the *full* channel bundle, so welfare [b]
    exactly equals the size of an independent set of [G] allocated all
    channels.  Returns the instance (with ρ set to the per-channel backward
    degree bound) and the ordering used. *)

val theorem5_instance :
  Sa_util.Prng.t -> n:int -> d:int -> Instance.t
(** Bounded-degree independent set as a k = 1 auction (Theorem 5's source
    problem): random degree-≤d graph, unit single-channel bids, degeneracy
    ordering, ρ = degeneracy. *)
