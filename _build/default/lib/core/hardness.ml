module Graph = Sa_graph.Graph
module Ordering = Sa_graph.Ordering
module Generators = Sa_graph.Generators
module Inductive = Sa_graph.Inductive
module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation

let unit_bid_on bundle = Valuation.Xor [ (bundle, 1.0) ]

let clique_auction ~n =
  let g = Graph.clique n in
  let bidders = Array.make n (unit_bid_on (Bundle.full 1)) in
  (* In a clique every vertex's backward neighbourhood is a clique, so any
     ordering witnesses ρ(π) = 1. *)
  Instance.make ~conflict:(Instance.Unweighted g) ~k:1 ~bidders
    ~ordering:(Ordering.identity n) ~rho:1.0

let theorem14_instance g ~k =
  let n = Graph.n g in
  let pi, _degeneracy = Inductive.degeneracy_ordering g in
  let parts = Generators.split_for_asymmetric_channels g pi ~k in
  (* Each channel graph's inductive independence w.r.t. pi is bounded by its
     maximum backward degree. *)
  let backward_degree gj v = List.length (Ordering.backward_neighbors pi gj v) in
  let rho =
    Array.fold_left
      (fun acc gj ->
        let worst = ref 0 in
        for v = 0 to n - 1 do
          worst := max !worst (backward_degree gj v)
        done;
        max acc !worst)
      1 parts
  in
  let bidders = Array.make n (unit_bid_on (Bundle.full k)) in
  let inst =
    Instance.make ~conflict:(Instance.Per_channel parts) ~k ~bidders ~ordering:pi
      ~rho:(float_of_int (max 1 rho))
  in
  (inst, pi)

let theorem5_instance g_rng ~n ~d =
  let g = Generators.random_bounded_degree g_rng ~n ~d in
  let pi, degeneracy = Inductive.degeneracy_ordering g in
  let bidders = Array.make n (unit_bid_on (Bundle.full 1)) in
  Instance.make ~conflict:(Instance.Unweighted g) ~k:1 ~bidders ~ordering:pi
    ~rho:(float_of_int (max 1 degeneracy))
