(** Points in the Euclidean plane.

    The binary interference models of Section 4 (protocol model, disk graphs,
    distance-2 variants) all place network nodes at planar points. *)

type t = { x : float; y : float }

val make : float -> float -> t
val origin : t

val dist : t -> t -> float
(** Euclidean distance. *)

val dist_sq : t -> t -> float
(** Squared distance (avoids the square root in comparisons). *)

val midpoint : t -> t -> t

val angle_from : t -> t -> float
(** [angle_from center p] is the polar angle of [p] seen from [center],
    in [(-pi, pi]]. *)

val translate : t -> dx:float -> dy:float -> t

val pp : Format.formatter -> t -> unit
(** Prints ["(x, y)"] with 3 decimals. *)
