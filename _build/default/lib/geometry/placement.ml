module Prng = Sa_util.Prng

let uniform g ~n ~side =
  Array.init n (fun _ -> Point.make (Prng.float g side) (Prng.float g side))

let clamp_to side (p : Point.t) =
  Point.make
    (Sa_util.Floats.clamp ~lo:0.0 ~hi:side p.Point.x)
    (Sa_util.Floats.clamp ~lo:0.0 ~hi:side p.Point.y)

let clustered g ~n ~side ~clusters ~spread =
  if clusters <= 0 then invalid_arg "Placement.clustered: clusters must be positive";
  let centres = uniform g ~n:clusters ~side in
  Array.init n (fun _ ->
      let c = Prng.choose g centres in
      let p =
        Point.make
          (Prng.gaussian g ~mean:c.Point.x ~stddev:spread)
          (Prng.gaussian g ~mean:c.Point.y ~stddev:spread)
      in
      clamp_to side p)

let grid ~n ~side =
  let cols = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  let step = side /. float_of_int (max 1 (cols - 1)) in
  Array.init n (fun i ->
      let row = i / cols and col = i mod cols in
      Point.make (float_of_int col *. step) (float_of_int row *. step))

let random_links g ~n ~side ~min_len ~max_len =
  if min_len <= 0.0 || max_len < min_len then
    invalid_arg "Placement.random_links: need 0 < min_len <= max_len";
  Array.init n (fun _ ->
      let sender = Point.make (Prng.float g side) (Prng.float g side) in
      let len = Prng.uniform_in g min_len max_len in
      let theta = Prng.float g (2.0 *. Float.pi) in
      let receiver =
        clamp_to side
          (Point.translate sender ~dx:(len *. cos theta) ~dy:(len *. sin theta))
      in
      (* Clamping can shrink a link to zero length when the sender sits in a
         corner; nudge the receiver back inside in that case. *)
      let receiver =
        if Point.dist sender receiver < min_len /. 2.0 then
          Point.translate sender
            ~dx:(if sender.Point.x < side /. 2.0 then len else -.len)
            ~dy:0.0
        else receiver
      in
      (sender, receiver))
