(** Random node placements for synthetic scenarios.

    The paper has no data sets; all experiments place secondary users
    synthetically.  Three standard spatial processes are provided:
    uniform (Poisson-like), clustered (Matérn-like "hot spots", modelling
    urban demand concentration), and grid (worst-case regular density). *)

val uniform : Sa_util.Prng.t -> n:int -> side:float -> Point.t array
(** [uniform g ~n ~side] draws [n] points i.i.d. uniform on
    [\[0,side\] x \[0,side\]]. *)

val clustered :
  Sa_util.Prng.t ->
  n:int ->
  side:float ->
  clusters:int ->
  spread:float ->
  Point.t array
(** [clustered g ~n ~side ~clusters ~spread] draws [clusters] uniform cluster
    centres, then places each of the [n] points at a Gaussian offset
    (stddev [spread]) from a uniformly chosen centre, clamped to the square. *)

val grid : n:int -> side:float -> Point.t array
(** [grid ~n ~side] places points on the smallest [ceil(sqrt n)]² lattice
    covering the square, returning the first [n]. *)

val random_links :
  Sa_util.Prng.t ->
  n:int ->
  side:float ->
  min_len:float ->
  max_len:float ->
  (Point.t * Point.t) array
(** [random_links g ~n ~side ~min_len ~max_len] draws [n] sender/receiver
    pairs: the sender uniform in the square, the receiver at a uniform
    distance in [\[min_len, max_len\]] and uniform angle (clamped into the
    square).  Link lengths therefore span the full range, which matters for
    the length-ordering arguments of Section 4.2. *)
