lib/geometry/placement.mli: Point Sa_util
