lib/geometry/placement.ml: Array Float Point Sa_util
