lib/geometry/metric.mli: Point
