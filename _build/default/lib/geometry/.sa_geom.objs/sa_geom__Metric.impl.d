lib/geometry/metric.ml: Array Float Point
