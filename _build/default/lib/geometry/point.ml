type t = { x : float; y : float }

let make x y = { x; y }
let origin = { x = 0.0; y = 0.0 }

let dist_sq a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let dist a b = sqrt (dist_sq a b)

let midpoint a b = { x = (a.x +. b.x) /. 2.0; y = (a.y +. b.y) /. 2.0 }
let angle_from center p = atan2 (p.y -. center.y) (p.x -. center.x)
let translate p ~dx ~dy = { x = p.x +. dx; y = p.y +. dy }

let pp fmt p = Format.fprintf fmt "(%.3f, %.3f)" p.x p.y
