type t =
  | Euclidean of Point.t array
  | Matrix of float array array

let size = function
  | Euclidean pts -> Array.length pts
  | Matrix m -> Array.length m

let dist t i j =
  match t with
  | Euclidean pts -> Point.dist pts.(i) pts.(j)
  | Matrix m -> m.(i).(j)

let of_points pts = Euclidean (Array.copy pts)

let of_matrix m =
  let n = Array.length m in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Metric.of_matrix: not square")
    m;
  for i = 0 to n - 1 do
    if Float.abs m.(i).(i) > 1e-9 then invalid_arg "Metric.of_matrix: non-zero diagonal";
    for j = i + 1 to n - 1 do
      if Float.abs (m.(i).(j) -. m.(j).(i)) > 1e-9 then
        invalid_arg "Metric.of_matrix: not symmetric";
      if m.(i).(j) <= 0.0 then invalid_arg "Metric.of_matrix: non-positive distance"
    done
  done;
  Matrix (Array.map Array.copy m)

let points = function Euclidean pts -> Some (Array.copy pts) | Matrix _ -> None

let check_triangle t =
  let n = size t in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for l = 0 to n - 1 do
        if dist t i j > dist t i l +. dist t l j +. 1e-9 then ok := false
      done
    done
  done;
  !ok

let star_metric n ~arm =
  if arm <= 0.0 then invalid_arg "Metric.star_metric: arm must be positive";
  let m =
    Array.init n (fun i -> Array.init n (fun j -> if i = j then 0.0 else 2.0 *. arm))
  in
  Matrix m

let uniform_metric n ~d =
  if d <= 0.0 then invalid_arg "Metric.uniform_metric: d must be positive";
  Matrix (Array.init n (fun i -> Array.init n (fun j -> if i = j then 0.0 else d)))
