lib/lp/revised.ml: Array Float List Simplex
