lib/lp/certify.ml: Array Float Format Simplex
