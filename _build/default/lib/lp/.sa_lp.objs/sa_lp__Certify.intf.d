lib/lp/certify.mli: Format Simplex
