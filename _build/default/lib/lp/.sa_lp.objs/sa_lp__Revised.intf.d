lib/lp/revised.mli: Simplex
