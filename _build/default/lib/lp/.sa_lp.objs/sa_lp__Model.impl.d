lib/lp/model.ml: Array List Revised Simplex
