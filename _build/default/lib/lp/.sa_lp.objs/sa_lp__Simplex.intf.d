lib/lp/simplex.mli:
