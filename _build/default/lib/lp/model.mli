(** Incremental LP model builder on top of {!Simplex}.

    Callers register variables (all implicitly [≥ 0]) and sparse constraint
    rows, then [solve].  Variable and row handles are plain ints, stable
    across the model's lifetime, so callers can keep maps from model objects
    (bidder/bundle pairs, (vertex, channel) constraints) to handles. *)

type t

type var = int
type row = int

val create : Simplex.direction -> t

val add_var : t -> obj:float -> var
(** New variable with the given objective coefficient. *)

val add_row : t -> (var * float) list -> Simplex.relation -> float -> row
(** [add_row t coeffs rel rhs] adds [Σ coeff·x rel rhs].  Repeated variables
    in [coeffs] are summed. *)

val add_to_row : t -> row -> var -> float -> unit
(** Add [coeff] to the entry of [var] in an existing row — lets column
    generation extend previously created constraints with new variables. *)

val num_vars : t -> int
val num_rows : t -> int

type solution = {
  status : Simplex.status;
  objective : float;
  value : var -> float;
  dual : row -> float;
}

type engine = Dense_tableau | Revised_sparse

val solve : ?engine:engine -> ?eps:float -> ?max_iters:int -> t -> solution
(** Runs the chosen simplex engine (default [Dense_tableau]; see
    {!Revised}) on the current model.  The model remains usable (more
    variables/rows may be added and [solve] called again — each call solves
    from scratch). *)
