(** Sparse revised simplex — an alternative engine to {!Simplex}.

    Same problem/solution types, different machinery: columns are stored
    sparsely and the basis inverse is maintained explicitly (product-form
    updates), so per-iteration cost is O(m² + m·nnz) instead of the dense
    tableau's O(m·ncols).  This wins when the LP has many more columns than
    rows — exactly the shape of the explicit channel-allocation LPs, whose
    column count is Σ|support| while rows are only n(k+1).

    Numerical behaviour can differ from the tableau in degenerate cases
    (both use Dantzig-with-Bland-fallback); the test suite cross-validates
    objectives between the two engines and certifies both with
    {!Certify}. *)

val solve : ?eps:float -> ?max_iters:int -> Simplex.problem -> Simplex.solution
(** Drop-in replacement for {!Simplex.solve}. *)
