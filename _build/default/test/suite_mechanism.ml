(* Tests for VCG, the Lavi–Swamy decomposition and the truthful mechanism. *)

module Prng = Sa_util.Prng
module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Vgen = Sa_val.Gen
module Graph = Sa_graph.Graph
module Generators = Sa_graph.Generators
module Inductive = Sa_graph.Inductive
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Vcg = Sa_mech.Vcg
module Decomposition = Sa_mech.Decomposition
module Lavi_swamy = Sa_mech.Lavi_swamy

let small_instance ~seed ~n ~k =
  let g = Prng.create ~seed in
  let graph = Generators.random_bounded_degree g ~n ~d:3 in
  let pi, degeneracy = Inductive.degeneracy_ordering graph in
  let bidders =
    Array.init n (fun _ ->
        Vgen.random_xor g ~k ~bids:2 ~max_bundle:(min 2 k)
          ~dist:(Vgen.Uniform (1.0, 10.0)))
  in
  Instance.make ~conflict:(Instance.Unweighted graph) ~k ~bidders ~ordering:pi
    ~rho:(float_of_int (max 1 degeneracy))

(* ---------- VCG ---------------------------------------------------------- *)

let test_vcg_basic () =
  let inst = small_instance ~seed:1 ~n:8 ~k:2 in
  let o = Vcg.run inst in
  Alcotest.(check bool) "allocation feasible" true
    (Allocation.is_feasible inst o.Vcg.allocation);
  Array.iteri
    (fun v p ->
      Alcotest.(check bool) "payment non-negative" true (p >= 0.0);
      (* individual rationality: pay at most your value *)
      Alcotest.(check bool) "payment <= value" true
        (p <= Allocation.bidder_value inst o.Vcg.allocation v +. 1e-9))
    o.Vcg.payments

let test_vcg_truthful () =
  (* Misreporting (scaling the valuation) never increases VCG utility. *)
  let inst = small_instance ~seed:2 ~n:7 ~k:2 in
  let truth = Vcg.run inst in
  let utility o v =
    Allocation.bidder_value inst o.Vcg.allocation v -. o.Vcg.payments.(v)
  in
  for v = 0 to Instance.n inst - 1 do
    List.iter
      (fun factor ->
        let bidders = Array.copy inst.Instance.bidders in
        bidders.(v) <- Valuation.scale bidders.(v) factor;
        let misreported =
          Instance.make ~conflict:inst.Instance.conflict ~k:inst.Instance.k
            ~bidders ~ordering:inst.Instance.ordering ~rho:inst.Instance.rho
        in
        let o' = Vcg.run misreported in
        (* utility measured with the TRUE valuation *)
        let u' =
          Valuation.value inst.Instance.bidders.(v) o'.Vcg.allocation.(v)
          -. o'.Vcg.payments.(v)
        in
        Alcotest.(check bool)
          (Printf.sprintf "bidder %d misreport x%.1f" v factor)
          true
          (u' <= utility truth v +. 1e-6))
      [ 0.0; 0.5; 2.0; 10.0 ]
  done

(* ---------- Decomposition ------------------------------------------------ *)

let test_decomposition_exact () =
  let inst = small_instance ~seed:3 ~n:8 ~k:2 in
  let frac = Lp.solve_explicit inst in
  let g = Prng.create ~seed:99 in
  let d = Decomposition.decompose g inst frac ~alpha:(Rounding.guarantee inst) in
  Alcotest.(check bool) "decomposition verifies" true
    (Decomposition.verify inst frac d);
  Alcotest.(check bool) "alpha_effective >= 1" true
    (d.Decomposition.alpha_effective >= 1.0)

let test_decomposition_alpha_effective () =
  (* With a generous alpha the master reaches Σλ <= 1 and alpha_effective
     equals the requested alpha. *)
  let inst = small_instance ~seed:4 ~n:7 ~k:2 in
  let frac = Lp.solve_explicit inst in
  let g = Prng.create ~seed:100 in
  let alpha = 4.0 *. Rounding.guarantee inst in
  let d = Decomposition.decompose g inst frac ~alpha in
  Alcotest.(check (float 1e-9)) "alpha preserved" alpha d.Decomposition.alpha_effective;
  Alcotest.(check bool) "verifies" true (Decomposition.verify inst frac d)

let test_decomposition_expected_value () =
  (* By construction E[b_v(S(v))] = fv_v / alpha_effective. *)
  let inst = small_instance ~seed:5 ~n:8 ~k:2 in
  let frac = Lp.solve_explicit inst in
  let g = Prng.create ~seed:101 in
  let d = Decomposition.decompose g inst frac ~alpha:(Rounding.guarantee inst) in
  for v = 0 to Instance.n inst - 1 do
    let expected = Decomposition.expected_value_of_bidder inst d v in
    let want = Lp.fractional_value_of_bidder inst frac v /. d.Decomposition.alpha_effective in
    if Float.abs (expected -. want) > 1e-5 then
      Alcotest.failf "bidder %d: E[value] %.6f but fv/alpha %.6f" v expected want
  done

let test_decomposition_sampling () =
  let inst = small_instance ~seed:6 ~n:6 ~k:2 in
  let frac = Lp.solve_explicit inst in
  let g = Prng.create ~seed:102 in
  let d = Decomposition.decompose g inst frac ~alpha:(Rounding.guarantee inst) in
  for _ = 1 to 50 do
    let alloc = Decomposition.sample g d in
    if not (Allocation.is_feasible inst alloc) then
      Alcotest.failf "sampled allocation infeasible"
  done

(* ---------- Lavi–Swamy mechanism ----------------------------------------- *)

let test_mechanism_ir_and_payments () =
  let inst = small_instance ~seed:7 ~n:8 ~k:2 in
  let g = Prng.create ~seed:103 in
  let o = Lavi_swamy.run g inst in
  for v = 0 to Instance.n inst - 1 do
    let u = Lavi_swamy.expected_utility inst o ~bidder:v
        ~true_valuation:inst.Instance.bidders.(v)
    in
    Alcotest.(check bool)
      (Printf.sprintf "bidder %d IR in expectation (u = %.6f)" v u)
      true (u >= -1e-6);
    Alcotest.(check bool) "expected payment non-negative" true
      (Lavi_swamy.expected_payment o v >= -1e-9)
  done

let test_mechanism_welfare_guarantee () =
  (* The lottery's expected welfare is exactly b*/alpha_effective. *)
  let inst = small_instance ~seed:8 ~n:8 ~k:2 in
  let g = Prng.create ~seed:104 in
  let o = Lavi_swamy.run g inst in
  let expected_welfare =
    let total = ref 0.0 in
    for v = 0 to Instance.n inst - 1 do
      total := !total +. Decomposition.expected_value_of_bidder inst o.Lavi_swamy.lottery v
    done;
    !total
  in
  let want = o.Lavi_swamy.fractional.Lp.objective /. o.Lavi_swamy.alpha in
  Alcotest.(check bool)
    (Printf.sprintf "E[welfare] %.6f = b*/alpha %.6f" expected_welfare want)
    true
    (Float.abs (expected_welfare -. want) < 1e-5)

let test_mechanism_truthful_in_expectation () =
  (* Fix everyone else; bidder v's expected utility under misreports (scale
     up/down, drop bids) must not beat truth.  alpha is pinned to the same
     value across runs so the comparison is apples-to-apples. *)
  let inst = small_instance ~seed:9 ~n:6 ~k:2 in
  let alpha = 4.0 *. Rounding.guarantee inst in
  let run instance seed =
    let g = Prng.create ~seed in
    Lavi_swamy.run ~alpha g instance
  in
  let truth = run inst 105 in
  Alcotest.(check (float 1e-9)) "alpha pinned" alpha truth.Lavi_swamy.alpha;
  for v = 0 to Instance.n inst - 1 do
    let u_truth =
      Lavi_swamy.expected_utility inst truth ~bidder:v
        ~true_valuation:inst.Instance.bidders.(v)
    in
    List.iter
      (fun factor ->
        let bidders = Array.copy inst.Instance.bidders in
        bidders.(v) <- Valuation.scale bidders.(v) factor;
        let mis =
          Instance.make ~conflict:inst.Instance.conflict ~k:inst.Instance.k
            ~bidders ~ordering:inst.Instance.ordering ~rho:inst.Instance.rho
        in
        let o' = run mis 105 in
        if Float.abs (o'.Lavi_swamy.alpha -. alpha) < 1e-9 then begin
          let u' =
            Lavi_swamy.expected_utility mis o' ~bidder:v
              ~true_valuation:inst.Instance.bidders.(v)
          in
          if u' > u_truth +. 1e-4 then
            Alcotest.failf "bidder %d profits from misreport x%.1f: %.6f > %.6f" v
              factor u' u_truth
        end)
      [ 0.0; 0.5; 2.0 ]
  done

let test_mechanism_sample () =
  let inst = small_instance ~seed:10 ~n:6 ~k:2 in
  let g = Prng.create ~seed:106 in
  let o = Lavi_swamy.run g inst in
  for _ = 1 to 30 do
    let alloc, payments = Lavi_swamy.sample g inst o in
    Alcotest.(check bool) "sampled feasible" true (Allocation.is_feasible inst alloc);
    Array.iteri
      (fun v p ->
        Alcotest.(check bool) "pay <= value (IR ex-post on realised value)" true
          (p <= Allocation.bidder_value inst alloc v +. 1e-6))
      payments
  done

let suite =
  [
    Alcotest.test_case "VCG: feasible, IR, non-negative payments" `Quick test_vcg_basic;
    Alcotest.test_case "VCG: truthful under scaling misreports" `Quick test_vcg_truthful;
    Alcotest.test_case "decomposition verifies exactly" `Quick test_decomposition_exact;
    Alcotest.test_case "decomposition keeps generous alpha" `Quick test_decomposition_alpha_effective;
    Alcotest.test_case "decomposition: E[value] = fv/alpha" `Quick test_decomposition_expected_value;
    Alcotest.test_case "decomposition sampling feasible" `Quick test_decomposition_sampling;
    Alcotest.test_case "mechanism: IR + payments" `Quick test_mechanism_ir_and_payments;
    Alcotest.test_case "mechanism: E[welfare] = b*/alpha" `Quick test_mechanism_welfare_guarantee;
    Alcotest.test_case "mechanism: truthful in expectation" `Slow test_mechanism_truthful_in_expectation;
    Alcotest.test_case "mechanism: sampling" `Quick test_mechanism_sample;
  ]
