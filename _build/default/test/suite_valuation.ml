(* Tests for Sa_val: bundles, valuations, demand oracles. *)

module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Vgen = Sa_val.Gen
module Prng = Sa_util.Prng

(* ---------- Bundle -------------------------------------------------------- *)

let test_bundle_basic () =
  let b = Bundle.of_list [ 0; 2; 5 ] in
  Alcotest.(check int) "card" 3 (Bundle.card b);
  Alcotest.(check bool) "mem 2" true (Bundle.mem 2 b);
  Alcotest.(check bool) "not mem 1" false (Bundle.mem 1 b);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 2; 5 ] (Bundle.to_list b);
  Alcotest.(check bool) "empty is empty" true (Bundle.is_empty Bundle.empty);
  Alcotest.(check int) "full 3" 3 (Bundle.card (Bundle.full 3))

let test_bundle_set_ops () =
  let a = Bundle.of_list [ 0; 1 ] and b = Bundle.of_list [ 1; 2 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2 ] (Bundle.to_list (Bundle.union a b));
  Alcotest.(check (list int)) "inter" [ 1 ] (Bundle.to_list (Bundle.inter a b));
  Alcotest.(check (list int)) "diff" [ 0 ] (Bundle.to_list (Bundle.diff a b));
  Alcotest.(check bool) "intersects" true (Bundle.intersects a b);
  Alcotest.(check bool) "subset" true (Bundle.subset (Bundle.singleton 1) a);
  Alcotest.(check bool) "not subset" false (Bundle.subset a b)

let test_bundle_all_subsets () =
  let subs = Bundle.all_subsets 3 in
  Alcotest.(check int) "2^3 subsets" 8 (List.length subs);
  Alcotest.(check int) "7 nonempty" 7 (List.length (Bundle.all_nonempty_subsets 3))

let test_bundle_bounds () =
  Alcotest.check_raises "channel 62 rejected"
    (Invalid_argument "Bundle: channel out of range") (fun () ->
      ignore (Bundle.singleton 62))

(* ---------- Valuation: value --------------------------------------------- *)

let test_xor_value_free_disposal () =
  let v = Valuation.Xor [ (Bundle.of_list [ 0 ], 5.0); (Bundle.of_list [ 0; 1 ], 3.0) ] in
  (* value of {0,1} is the best listed subset: 5 from {0} beats 3 *)
  Alcotest.(check (float 1e-12)) "superset takes best sub-bid" 5.0
    (Valuation.value v (Bundle.of_list [ 0; 1 ]));
  Alcotest.(check (float 1e-12)) "exact bid" 5.0 (Valuation.value v (Bundle.singleton 0));
  Alcotest.(check (float 1e-12)) "uncovered" 0.0 (Valuation.value v (Bundle.singleton 1));
  Alcotest.(check (float 1e-12)) "empty" 0.0 (Valuation.value v Bundle.empty)

let test_additive_value () =
  let v = Valuation.Additive [| 1.0; 2.0; 4.0 |] in
  Alcotest.(check (float 1e-12)) "sum" 5.0 (Valuation.value v (Bundle.of_list [ 0; 2 ]))

let test_unit_demand_value () =
  let v = Valuation.Unit_demand [| 1.0; 7.0; 4.0 |] in
  Alcotest.(check (float 1e-12)) "max" 7.0 (Valuation.value v (Bundle.full 3))

let test_symmetric_value () =
  let v = Valuation.Symmetric [| 0.0; 3.0; 5.0; 6.0 |] in
  Alcotest.(check (float 1e-12)) "by cardinality" 5.0
    (Valuation.value v (Bundle.of_list [ 0; 2 ]))

let test_validate () =
  Alcotest.check_raises "negative bid"
    (Invalid_argument "Valuation.validate: negative bid value") (fun () ->
      Valuation.validate (Valuation.Xor [ (Bundle.singleton 0, -1.0) ]) ~k:2);
  Alcotest.check_raises "channel out of k"
    (Invalid_argument "Valuation.validate: bid uses channel >= k") (fun () ->
      Valuation.validate (Valuation.Xor [ (Bundle.singleton 3, 1.0) ]) ~k:2);
  Alcotest.check_raises "symmetric f0"
    (Invalid_argument "Valuation.validate: Symmetric f(0) must be 0") (fun () ->
      Valuation.validate (Valuation.Symmetric [| 1.0; 2.0; 3.0 |]) ~k:2)

(* ---------- Demand oracles: exactness vs brute force ---------------------- *)

let brute_force_demand v ~k ~prices =
  List.fold_left
    (fun (best_b, best_u) b ->
      let bundle = Bundle.of_int b in
      let u =
        Valuation.value v bundle
        -. Bundle.fold (fun j acc -> acc +. prices.(j)) bundle 0.0
      in
      if u > best_u +. 1e-12 then (bundle, u) else (best_b, best_u))
    (Bundle.empty, 0.0)
    (List.map Bundle.to_int (Bundle.all_subsets k))

let check_demand_exact ~name v ~k prices =
  let _, u_oracle = Valuation.demand v ~prices in
  let _, u_brute = brute_force_demand v ~k ~prices in
  Alcotest.(check (float 1e-9)) name u_brute u_oracle

let test_demand_oracles_exact () =
  let g = Prng.create ~seed:21 in
  let k = 4 in
  for _ = 1 to 50 do
    let prices = Array.init k (fun _ -> Prng.float g 5.0) in
    check_demand_exact ~name:"xor"
      (Vgen.random_xor g ~k ~bids:4 ~max_bundle:3 ~dist:(Vgen.Uniform (1.0, 10.0)))
      ~k prices;
    check_demand_exact ~name:"additive"
      (Vgen.random_additive g ~k ~dist:(Vgen.Uniform (1.0, 10.0)))
      ~k prices;
    check_demand_exact ~name:"unit"
      (Vgen.random_unit_demand g ~k ~dist:(Vgen.Uniform (1.0, 10.0)))
      ~k prices;
    check_demand_exact ~name:"symmetric"
      (Vgen.random_symmetric g ~k ~dist:(Vgen.Uniform (1.0, 5.0)) ~concave:true)
      ~k prices;
    check_demand_exact ~name:"budget-additive"
      (Vgen.random_budget_additive g ~k ~dist:(Vgen.Uniform (1.0, 8.0)))
      ~k prices
  done

let test_demand_zero_prices () =
  let v = Valuation.Additive [| 1.0; 0.0; 3.0 |] in
  let bundle, util = Valuation.demand v ~prices:[| 0.0; 0.0; 0.0 |] in
  Alcotest.(check (float 1e-12)) "utility = total positive value" 4.0 util;
  Alcotest.(check bool) "takes positive channels" true
    (Bundle.mem 0 bundle && Bundle.mem 2 bundle && not (Bundle.mem 1 bundle))

let test_demand_high_prices () =
  let v = Valuation.Unit_demand [| 1.0; 2.0 |] in
  let bundle, util = Valuation.demand v ~prices:[| 10.0; 10.0 |] in
  Alcotest.(check bool) "empty demand" true (Bundle.is_empty bundle);
  Alcotest.(check (float 1e-12)) "zero utility" 0.0 util

(* ---------- support / max_value ------------------------------------------- *)

let test_or_bids_value () =
  let v =
    Valuation.Or_bids
      [
        (Bundle.of_list [ 0 ], 3.0);
        (Bundle.of_list [ 1 ], 4.0);
        (Bundle.of_list [ 0; 1 ], 6.0);
        (Bundle.of_list [ 2 ], 1.0);
      ]
  in
  (* value {0,1}: either bid 3 + bid 4 (disjoint) = 7, or the pair bid 6 *)
  Alcotest.(check (float 1e-12)) "packs disjoint bids" 7.0
    (Valuation.value v (Bundle.of_list [ 0; 1 ]));
  Alcotest.(check (float 1e-12)) "singleton" 3.0 (Valuation.value v (Bundle.singleton 0));
  Alcotest.(check (float 1e-12)) "everything" 8.0 (Valuation.value v (Bundle.full 3));
  Alcotest.(check (float 1e-12)) "max_value" 8.0 (Valuation.max_value v ~k:3)

let test_or_bids_demand_exact () =
  let g = Prng.create ~seed:23 in
  let k = 4 in
  for _ = 1 to 30 do
    let v = Vgen.random_or g ~k ~bids:4 ~max_bundle:2 ~dist:(Vgen.Uniform (1.0, 8.0)) in
    let prices = Array.init k (fun _ -> Prng.float g 5.0) in
    check_demand_exact ~name:"or-bids" v ~k prices
  done

let test_or_bids_validate () =
  Alcotest.check_raises "too many atomic bids"
    (Invalid_argument "Valuation.validate: Or_bids limited to 20 atomic bids")
    (fun () ->
      Valuation.validate
        (Valuation.Or_bids (List.init 21 (fun i -> (Bundle.singleton (i mod 4), 1.0))))
        ~k:4)

let test_budget_additive_cap () =
  let v = Valuation.Budget_additive { values = [| 3.0; 4.0; 5.0 |]; budget = 6.0 } in
  Alcotest.(check (float 1e-12)) "below cap" 3.0 (Valuation.value v (Bundle.singleton 0));
  Alcotest.(check (float 1e-12)) "capped" 6.0 (Valuation.value v (Bundle.full 3));
  Alcotest.(check (float 1e-12)) "max_value capped" 6.0 (Valuation.max_value v ~k:3);
  (* demand under prices: channel 2 alone gives min(6,5)-1 = 4; {1,2} gives
     6 - 2 = 4; {0,2} gives 6 - 2 = 4; cheapest way to reach the cap wins or
     ties — just check oracle matches brute force, via the shared helper. *)
  check_demand_exact ~name:"budget-additive crafted" v ~k:3 [| 1.0; 1.0; 1.0 |]

let test_budget_additive_scale () =
  let v = Valuation.Budget_additive { values = [| 2.0; 2.0 |]; budget = 3.0 } in
  let half = Valuation.scale v 0.5 in
  Alcotest.(check (float 1e-12)) "scaled cap" 1.5 (Valuation.value half (Bundle.full 2))

let test_support_xor () =
  let v =
    Valuation.Xor [ (Bundle.singleton 0, 2.0); (Bundle.empty, 0.0); (Bundle.singleton 1, 0.0) ]
  in
  let s = Valuation.support v ~k:2 in
  Alcotest.(check int) "only positive non-empty" 1 (List.length s)

let test_support_additive_enumerates () =
  let v = Valuation.Additive [| 1.0; 1.0 |] in
  let s = Valuation.support v ~k:2 in
  Alcotest.(check int) "3 bundles" 3 (List.length s)

let test_max_value () =
  Alcotest.(check (float 1e-12)) "additive" 6.0
    (Valuation.max_value (Valuation.Additive [| 1.0; 2.0; 3.0 |]) ~k:3);
  Alcotest.(check (float 1e-12)) "xor" 4.0
    (Valuation.max_value
       (Valuation.Xor [ (Bundle.singleton 0, 4.0); (Bundle.singleton 1, 2.0) ])
       ~k:2)

let test_scale () =
  let v = Valuation.scale (Valuation.Additive [| 2.0; 4.0 |]) 0.5 in
  Alcotest.(check (float 1e-12)) "halved" 3.0 (Valuation.value v (Bundle.full 2))

(* ---------- property tests ------------------------------------------------- *)

let prop_demand_dominates_any_bundle =
  QCheck.Test.make ~name:"demand utility >= utility of any bundle" ~count:100
    QCheck.(pair (int_range 1 10_000) (int_range 0 15))
    (fun (seed, bmask) ->
      let g = Prng.create ~seed in
      let k = 4 in
      let v = Vgen.random_mixed g ~k ~dist:(Vgen.Uniform (0.5, 8.0)) in
      let prices = Array.init k (fun _ -> Prng.float g 4.0) in
      let _, u = Valuation.demand v ~prices in
      let bundle = Bundle.of_int bmask in
      let u_b =
        Valuation.value v bundle
        -. Bundle.fold (fun j acc -> acc +. prices.(j)) bundle 0.0
      in
      u >= u_b -. 1e-9)

let prop_value_nonneg =
  QCheck.Test.make ~name:"values are non-negative" ~count:100
    QCheck.(pair (int_range 1 10_000) (int_range 0 15))
    (fun (seed, bmask) ->
      let g = Prng.create ~seed in
      let v = Vgen.random_mixed g ~k:4 ~dist:(Vgen.Uniform (0.0, 5.0)) in
      Valuation.value v (Bundle.of_int bmask) >= 0.0)

let suite =
  [
    Alcotest.test_case "bundle basics" `Quick test_bundle_basic;
    Alcotest.test_case "bundle set operations" `Quick test_bundle_set_ops;
    Alcotest.test_case "bundle subset enumeration" `Quick test_bundle_all_subsets;
    Alcotest.test_case "bundle channel bounds" `Quick test_bundle_bounds;
    Alcotest.test_case "XOR free disposal" `Quick test_xor_value_free_disposal;
    Alcotest.test_case "additive value" `Quick test_additive_value;
    Alcotest.test_case "unit-demand value" `Quick test_unit_demand_value;
    Alcotest.test_case "symmetric value" `Quick test_symmetric_value;
    Alcotest.test_case "validation errors" `Quick test_validate;
    Alcotest.test_case "demand oracles exact vs brute force" `Quick test_demand_oracles_exact;
    Alcotest.test_case "demand at zero prices" `Quick test_demand_zero_prices;
    Alcotest.test_case "demand under high prices" `Quick test_demand_high_prices;
    Alcotest.test_case "OR bids pack disjointly" `Quick test_or_bids_value;
    Alcotest.test_case "OR bids demand exact" `Quick test_or_bids_demand_exact;
    Alcotest.test_case "OR bids validation" `Quick test_or_bids_validate;
    Alcotest.test_case "budget-additive cap" `Quick test_budget_additive_cap;
    Alcotest.test_case "budget-additive scaling" `Quick test_budget_additive_scale;
    Alcotest.test_case "XOR support filters" `Quick test_support_xor;
    Alcotest.test_case "additive support enumerates" `Quick test_support_additive_enumerates;
    Alcotest.test_case "max_value" `Quick test_max_value;
    Alcotest.test_case "scaling" `Quick test_scale;
    QCheck_alcotest.to_alcotest prop_demand_dominates_any_bundle;
    QCheck_alcotest.to_alcotest prop_value_nonneg;
  ]
