(* Tests for the online allocation rules. *)

module Prng = Sa_util.Prng
module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Graph = Sa_graph.Graph
module Ordering = Sa_graph.Ordering
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Exact = Sa_core.Exact
module Online = Sa_core.Online
module Workloads = Sa_exp.Workloads

let identity_order n = Array.init n (fun i -> i)

let test_first_fit_feasible () =
  for seed = 1 to 10 do
    let inst = Workloads.protocol_instance ~seed ~n:15 ~k:3 () in
    let g = Prng.create ~seed:(seed * 3) in
    let order = Prng.permutation g (Instance.n inst) in
    let r = Online.first_fit inst ~order in
    Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst r.Online.allocation);
    Alcotest.(check (float 1e-9)) "value consistent" r.Online.value
      (Allocation.value inst r.Online.allocation)
  done

let test_first_fit_below_optimum () =
  let inst = Workloads.protocol_instance ~seed:3 ~n:12 ~k:2 () in
  let e = Exact.solve inst in
  let r = Online.first_fit inst ~order:(identity_order 12) in
  Alcotest.(check bool) "<= optimum" true (r.Online.value <= e.Exact.value +. 1e-9)

let test_first_fit_maximality () =
  (* First-fit leaves no bidder that could still be allocated its best
     bundle... at least: every unallocated bidder has no feasible support
     bundle left. *)
  let inst = Workloads.protocol_instance ~seed:5 ~n:12 ~k:2 () in
  let n = Instance.n inst in
  let r = Online.first_fit inst ~order:(identity_order n) in
  let alloc = r.Online.allocation in
  Array.iteri
    (fun v bundle ->
      if Bundle.is_empty bundle then begin
        let supports = Valuation.support inst.Instance.bidders.(v) ~k:inst.Instance.k in
        List.iter
          (fun (b, value) ->
            if value > 0.0 then begin
              alloc.(v) <- b;
              let feasible = Allocation.is_feasible inst alloc in
              alloc.(v) <- Bundle.empty;
              if feasible then
                Alcotest.failf "bidder %d could still take a bundle after first-fit" v
            end)
          supports
      end)
    alloc

let test_threshold_zero_equals_first_fit () =
  let inst = Workloads.protocol_instance ~seed:7 ~n:12 ~k:2 () in
  let order = identity_order 12 in
  let ff = Online.first_fit inst ~order in
  let th = Online.threshold inst ~order ~theta:0.0 in
  Alcotest.(check (float 1e-9)) "same value" ff.Online.value th.Online.value;
  Alcotest.(check int) "nothing rejected" 0 th.Online.rejected_by_threshold

let test_threshold_filters () =
  (* Everyone worth 1 except one worth 100: theta = 50 admits only the
     big bidder. *)
  let n = 5 in
  let bidders =
    Array.init n (fun v ->
        Valuation.Xor [ (Bundle.singleton 0, if v = 2 then 100.0 else 1.0) ])
  in
  let inst =
    Instance.make
      ~conflict:(Instance.Unweighted (Graph.create n))
      ~k:1 ~bidders ~ordering:(Ordering.identity n) ~rho:1.0
  in
  let r = Online.threshold inst ~order:(identity_order n) ~theta:50.0 in
  Alcotest.(check int) "one admitted" 1 r.Online.admitted;
  Alcotest.(check int) "four rejected" 4 r.Online.rejected_by_threshold;
  Alcotest.(check (float 1e-9)) "value 100" 100.0 r.Online.value

let test_threshold_hedges_clique () =
  (* Clique, cheap bidders first, one expensive bidder last: first-fit
     takes the first cheap bidder; a good threshold waits. *)
  let n = 6 in
  let bidders =
    Array.init n (fun v ->
        Valuation.Xor [ (Bundle.singleton 0, if v = n - 1 then 50.0 else 2.0) ])
  in
  let inst =
    Instance.make
      ~conflict:(Instance.Unweighted (Graph.clique n))
      ~k:1 ~bidders ~ordering:(Ordering.identity n) ~rho:1.0
  in
  let order = identity_order n in
  let ff = Online.first_fit inst ~order in
  let th = Online.threshold inst ~order ~theta:10.0 in
  Alcotest.(check (float 1e-9)) "first-fit grabs a cheap one" 2.0 ff.Online.value;
  Alcotest.(check (float 1e-9)) "threshold waits for the big one" 50.0 th.Online.value

let test_adaptive_threshold_feasible () =
  for seed = 11 to 15 do
    let inst = Workloads.protocol_instance ~seed ~n:14 ~k:2 () in
    let g = Prng.create ~seed in
    let order = Prng.permutation g (Instance.n inst) in
    let r = Online.adaptive_threshold inst ~order in
    Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst r.Online.allocation)
  done

let test_order_validation () =
  let inst = Workloads.protocol_instance ~seed:17 ~n:5 ~k:1 () in
  Alcotest.check_raises "short order" (Invalid_argument "Online: order size mismatch")
    (fun () -> ignore (Online.first_fit inst ~order:[| 0; 1 |]));
  Alcotest.check_raises "dup order" (Invalid_argument "Online: order not a permutation")
    (fun () -> ignore (Online.first_fit inst ~order:[| 0; 0; 1; 2; 3 |]))

let test_respects_masks () =
  let n = 3 in
  let bidders = Array.make n (Valuation.Xor [ (Bundle.singleton 0, 5.0) ]) in
  let inst =
    Instance.with_available
      (Instance.make
         ~conflict:(Instance.Unweighted (Graph.create n))
         ~k:1 ~bidders ~ordering:(Ordering.identity n) ~rho:1.0)
      [| Bundle.empty; Bundle.full 1; Bundle.full 1 |]
  in
  let r = Online.first_fit inst ~order:(identity_order n) in
  Alcotest.(check bool) "blocked bidder not served" true (Bundle.is_empty r.Online.allocation.(0));
  Alcotest.(check int) "others served" 2 r.Online.admitted

let suite =
  [
    Alcotest.test_case "first-fit feasible" `Quick test_first_fit_feasible;
    Alcotest.test_case "first-fit below optimum" `Quick test_first_fit_below_optimum;
    Alcotest.test_case "first-fit maximal" `Quick test_first_fit_maximality;
    Alcotest.test_case "threshold 0 = first-fit" `Quick test_threshold_zero_equals_first_fit;
    Alcotest.test_case "threshold filters small bids" `Quick test_threshold_filters;
    Alcotest.test_case "threshold hedges on cliques" `Quick test_threshold_hedges_clique;
    Alcotest.test_case "adaptive threshold feasible" `Quick test_adaptive_threshold_feasible;
    Alcotest.test_case "order validation" `Quick test_order_validation;
    Alcotest.test_case "online respects masks" `Quick test_respects_masks;
  ]
