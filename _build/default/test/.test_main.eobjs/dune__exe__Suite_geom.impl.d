test/suite_geom.ml: Alcotest Array QCheck QCheck_alcotest Sa_geom Sa_util
