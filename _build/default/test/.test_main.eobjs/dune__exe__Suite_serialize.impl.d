test/suite_serialize.ml: Alcotest Array Filename Float Fun List QCheck QCheck_alcotest Sa_core Sa_exp Sa_graph Sa_util Sa_val Sa_wireless Sys
