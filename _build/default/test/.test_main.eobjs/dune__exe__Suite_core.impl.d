test/suite_core.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Sa_core Sa_exp Sa_geom Sa_graph Sa_lp Sa_util Sa_val Sa_wireless
