test/suite_parallel.ml: Alcotest List Printf Sa_core Sa_exp Sa_util Sa_wireless
