test/suite_mechanism.ml: Alcotest Array Float List Printf Sa_core Sa_graph Sa_mech Sa_util Sa_val
