test/suite_sim.ml: Alcotest List Sa_sim Sa_util
