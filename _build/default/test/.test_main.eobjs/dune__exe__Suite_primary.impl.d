test/suite_primary.ml: Alcotest Array Float Printf Sa_core Sa_geom Sa_graph Sa_util Sa_val Sa_wireless
