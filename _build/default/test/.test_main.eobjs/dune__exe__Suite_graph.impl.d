test/suite_graph.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest Sa_graph Sa_util
