test/suite_double_auction.ml: Alcotest Array Fun List Printf Sa_graph Sa_mech Sa_util
