test/suite_valuation.ml: Alcotest Array List QCheck QCheck_alcotest Sa_util Sa_val
