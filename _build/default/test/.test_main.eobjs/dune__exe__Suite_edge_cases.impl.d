test/suite_edge_cases.ml: Alcotest Array Float List Printf Sa_core Sa_geom Sa_graph Sa_lp Sa_util Sa_val Sa_wireless
