test/suite_online.ml: Alcotest Array List Sa_core Sa_exp Sa_graph Sa_util Sa_val
