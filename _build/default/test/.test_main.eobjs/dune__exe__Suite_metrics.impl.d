test/suite_metrics.ml: Alcotest Array Sa_core Sa_exp Sa_graph Sa_util Sa_val
