test/suite_lp.ml: Alcotest Array Float Format List QCheck QCheck_alcotest Sa_lp Sa_util
