test/suite_util.ml: Alcotest Array Float Fun List Printf QCheck QCheck_alcotest Sa_util String
