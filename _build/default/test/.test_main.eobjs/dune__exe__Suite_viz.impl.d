test/suite_viz.ml: Alcotest Array Sa_core Sa_geom Sa_util Sa_val Sa_viz Sa_wireless String
