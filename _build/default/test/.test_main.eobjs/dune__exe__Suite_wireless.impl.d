test/suite_wireless.ml: Alcotest Array Float List Printf Sa_geom Sa_graph Sa_util Sa_wireless
