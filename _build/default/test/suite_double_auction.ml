(* Tests for the TRUST-style double auction. *)

module Prng = Sa_util.Prng
module Graph = Sa_graph.Graph
module Generators = Sa_graph.Generators
module Da = Sa_mech.Double_auction

let run_random ~seed ~n ~m ~p =
  let g = Prng.create ~seed in
  let graph = Generators.gnp g ~n ~p in
  let bids = Array.init n (fun _ -> Prng.float g 10.0) in
  let asks = Array.init m (fun _ -> Prng.float g 8.0) in
  (graph, bids, asks, Da.run graph ~bids ~asks)

let test_feasibility () =
  for seed = 1 to 10 do
    let graph, _, _, o = run_random ~seed ~n:14 ~m:4 ~p:0.3 in
    Alcotest.(check bool) "feasible" true (Da.is_feasible graph o)
  done

let test_budget_balance () =
  for seed = 11 to 25 do
    let _, _, _, o = run_random ~seed ~n:14 ~m:4 ~p:0.3 in
    Alcotest.(check bool)
      (Printf.sprintf "surplus %.4f >= 0" o.Da.surplus)
      true (o.Da.surplus >= -1e-9)
  done

let test_individual_rationality () =
  for seed = 26 to 40 do
    let _, bids, asks, o = run_random ~seed ~n:14 ~m:4 ~p:0.3 in
    (* winners pay at most their bid *)
    Array.iteri
      (fun v pay ->
        if pay > 0.0 && pay > bids.(v) +. 1e-9 then
          Alcotest.failf "buyer %d pays %.4f above bid %.4f" v pay bids.(v))
      o.Da.buyer_payments;
    (* trading sellers receive at least their ask *)
    Array.iteri
      (fun j rev ->
        if rev > 0.0 && rev < asks.(j) -. 1e-9 then
          Alcotest.failf "seller %d receives %.4f below ask %.4f" j rev asks.(j))
      o.Da.seller_revenue
  done

let test_clearing_logic () =
  (* Hand-crafted: 4 isolated buyers (one group... careful: isolated graph
     -> a single group of all 4).  Use a path to split groups. *)
  let graph = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  (* groups by index-order peeling: {0, 2}, {1, 3} *)
  let bids = [| 6.0; 5.0; 4.0; 3.0 |] in
  (* group bids: {0,2} -> 2*4 = 8; {1,3} -> 2*3 = 6 *)
  let asks = [| 5.0; 7.0 |] in
  (* sorted bids [8; 6] vs asks [5; 7]: q = 1 (8 >= 5; 6 < 7) -> trade 0 *)
  let o = Da.run graph ~bids ~asks in
  Alcotest.(check int) "no trade when q = 1" 0 o.Da.traded;
  (* cheaper second ask -> q = 2, one trade at clearing bid 6, ask 5 *)
  let o2 = Da.run graph ~bids ~asks:[| 5.0; 5.5 |] in
  Alcotest.(check int) "one trade" 1 o2.Da.traded;
  (* winning group = {0,2}, each pays 6/2 = 3 *)
  Alcotest.(check (float 1e-9)) "buyer 0 pays" 3.0 o2.Da.buyer_payments.(0);
  Alcotest.(check (float 1e-9)) "buyer 2 pays" 3.0 o2.Da.buyer_payments.(2);
  Alcotest.(check (float 1e-9)) "buyer 1 pays nothing" 0.0 o2.Da.buyer_payments.(1);
  (* cheapest seller (ask 5) trades and receives the 2nd-lowest ask 5.5 *)
  Alcotest.(check (float 1e-9)) "seller 0 revenue" 5.5 o2.Da.seller_revenue.(0);
  Alcotest.(check (float 1e-9)) "surplus" (6.0 -. 5.5) o2.Da.surplus

let test_buyer_truthfulness () =
  (* Fix everyone else; sweep one buyer's misreports and compare utility
     (bid-value is the true value). *)
  for seed = 41 to 46 do
    let g = Prng.create ~seed in
    let graph = Generators.gnp g ~n:10 ~p:0.3 in
    let bids = Array.init 10 (fun _ -> Prng.float g 10.0) in
    let asks = Array.init 3 (fun _ -> Prng.float g 6.0) in
    let utility o v true_value =
      if o.Da.buyer_payments.(v) > 0.0 then true_value -. o.Da.buyer_payments.(v)
      else 0.0
    in
    for v = 0 to 9 do
      let truth = Da.run graph ~bids ~asks in
      let u_truth = utility truth v bids.(v) in
      List.iter
        (fun factor ->
          let mis = Array.copy bids in
          mis.(v) <- bids.(v) *. factor;
          let o = Da.run graph ~bids:mis ~asks in
          let u = utility o v bids.(v) in
          if u > u_truth +. 1e-9 then
            Alcotest.failf "seed %d: buyer %d gains %.4f > %.4f by bidding x%.1f" seed
              v u u_truth factor)
        [ 0.0; 0.5; 0.9; 1.1; 2.0; 10.0 ]
    done
  done

let test_seller_truthfulness () =
  for seed = 47 to 50 do
    let g = Prng.create ~seed in
    let graph = Generators.gnp g ~n:10 ~p:0.3 in
    let bids = Array.init 10 (fun _ -> Prng.float g 10.0) in
    let asks = Array.init 3 (fun _ -> 1.0 +. Prng.float g 5.0) in
    let utility o j true_cost =
      if o.Da.seller_revenue.(j) > 0.0 then o.Da.seller_revenue.(j) -. true_cost else 0.0
    in
    for j = 0 to 2 do
      let truth = Da.run graph ~bids ~asks in
      let u_truth = utility truth j asks.(j) in
      List.iter
        (fun factor ->
          let mis = Array.copy asks in
          mis.(j) <- asks.(j) *. factor;
          let o = Da.run graph ~bids ~asks:mis in
          let u = utility o j asks.(j) in
          if u > u_truth +. 1e-9 then
            Alcotest.failf "seed %d: seller %d gains by asking x%.1f" seed j factor)
        [ 0.1; 0.5; 0.9; 1.1; 2.0 ]
    done
  done

let test_group_formation_independent_sets () =
  let g = Prng.create ~seed:51 in
  let graph = Generators.gnp g ~n:20 ~p:0.4 in
  let bids = Array.make 20 1.0 in
  let asks = [| 0.5 |] in
  let o = Da.run graph ~bids ~asks in
  Array.iter
    (fun grp ->
      Alcotest.(check bool) "group is independent" true
        (Graph.is_independent graph grp.Da.members))
    o.Da.groups;
  (* groups partition the buyers *)
  let covered =
    Array.to_list o.Da.groups |> List.concat_map (fun g -> g.Da.members) |> List.sort compare
  in
  Alcotest.(check (list int)) "partition" (List.init 20 Fun.id) covered

let test_no_sellers () =
  let graph = Graph.create 4 in
  let o = Da.run graph ~bids:[| 1.0; 2.0; 3.0; 4.0 |] ~asks:[||] in
  Alcotest.(check int) "no trade" 0 o.Da.traded;
  Alcotest.(check (float 1e-12)) "no welfare" 0.0 o.Da.buyer_welfare

let suite =
  [
    Alcotest.test_case "feasibility" `Quick test_feasibility;
    Alcotest.test_case "budget balance" `Quick test_budget_balance;
    Alcotest.test_case "individual rationality" `Quick test_individual_rationality;
    Alcotest.test_case "McAfee clearing logic" `Quick test_clearing_logic;
    Alcotest.test_case "buyer truthfulness" `Quick test_buyer_truthfulness;
    Alcotest.test_case "seller truthfulness" `Quick test_seller_truthfulness;
    Alcotest.test_case "groups are independent sets" `Quick test_group_formation_independent_sets;
    Alcotest.test_case "degenerate: no sellers" `Quick test_no_sellers;
  ]
