(* Tests for the SVG rendering substrate. *)

module Svg = Sa_viz.Svg
module Render = Sa_viz.Render
module Bundle = Sa_val.Bundle
module Prng = Sa_util.Prng

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_svg_structure () =
  let svg = Svg.create ~world:(0.0, 0.0, 10.0, 5.0) ~width_px:500 in
  Svg.circle svg ~cx:5.0 ~cy:2.5 ~r:1.0 ~fill:"red" ();
  Svg.line svg ~x1:0.0 ~y1:0.0 ~x2:10.0 ~y2:5.0 ();
  Svg.text svg ~x:1.0 ~y:1.0 "hello";
  let s = Svg.to_string svg in
  Alcotest.(check bool) "opens svg" true (contains ~needle:"<svg" s);
  Alcotest.(check bool) "closes svg" true (contains ~needle:"</svg>" s);
  Alcotest.(check bool) "has circle" true (contains ~needle:"<circle" s);
  Alcotest.(check bool) "has line" true (contains ~needle:"<line" s);
  Alcotest.(check bool) "has text" true (contains ~needle:"hello" s);
  (* aspect ratio: 10x5 world at 500px wide -> 250px tall *)
  Alcotest.(check bool) "height follows aspect" true
    (contains ~needle:{|height="250"|} s)

let test_svg_y_flip () =
  (* world y=0 must map to the bottom (pixel y = height). *)
  let svg = Svg.create ~world:(0.0, 0.0, 10.0, 10.0) ~width_px:100 in
  Svg.circle svg ~cx:0.0 ~cy:0.0 ~r:1.0 ();
  let s = Svg.to_string svg in
  Alcotest.(check bool) "y flipped" true (contains ~needle:{|cy="100.00"|} s)

let test_svg_escaping () =
  let svg = Svg.create ~world:(0.0, 0.0, 1.0, 1.0) ~width_px:100 in
  Svg.text svg ~x:0.5 ~y:0.5 "a<b & c>d";
  let s = Svg.to_string svg in
  Alcotest.(check bool) "escaped" true (contains ~needle:"a&lt;b &amp; c&gt;d" s)

let test_svg_bad_world () =
  Alcotest.check_raises "empty box" (Invalid_argument "Svg.create: empty world box")
    (fun () -> ignore (Svg.create ~world:(1.0, 0.0, 1.0, 2.0) ~width_px:100))

let test_render_links () =
  let g = Prng.create ~seed:5 in
  let sys =
    Sa_wireless.Link.of_point_pairs
      (Sa_geom.Placement.random_links g ~n:10 ~side:8.0 ~min_len:0.5 ~max_len:1.5)
  in
  let alloc = Sa_core.Allocation.empty 10 in
  alloc.(0) <- Bundle.of_list [ 0 ];
  alloc.(3) <- Bundle.of_list [ 1; 2 ];
  let s = Svg.to_string (Render.links ~alloc sys) in
  Alcotest.(check bool) "channel 0 colour present" true
    (contains ~needle:(Render.channel_color 0) s);
  Alcotest.(check bool) "channel 1 colour present" true
    (contains ~needle:(Render.channel_color 1) s);
  Alcotest.(check bool) "legend labels" true (contains ~needle:"channel 0" s)

let test_render_disks () =
  let g = Prng.create ~seed:7 in
  let d = Sa_wireless.Disk.random g ~n:8 ~side:6.0 ~rmin:0.5 ~rmax:1.0 in
  let s = Svg.to_string (Render.disks d) in
  (* one coverage circle + one centre dot per disk, plus background rect *)
  let count =
    let c = ref 0 and i = ref 0 in
    let len = String.length s in
    while !i + 7 <= len do
      if String.sub s !i 7 = "<circle" then incr c;
      incr i
    done;
    !c
  in
  Alcotest.(check int) "two circles per disk" 16 count

let test_palette_cycles () =
  Alcotest.(check string) "wraps at 10" (Render.channel_color 0) (Render.channel_color 10);
  Alcotest.(check bool) "distinct early colours" true
    (Render.channel_color 0 <> Render.channel_color 1)

let suite =
  [
    Alcotest.test_case "svg structure + aspect" `Quick test_svg_structure;
    Alcotest.test_case "svg y axis flip" `Quick test_svg_y_flip;
    Alcotest.test_case "svg text escaping" `Quick test_svg_escaping;
    Alcotest.test_case "svg bad world box" `Quick test_svg_bad_world;
    Alcotest.test_case "render links" `Quick test_render_links;
    Alcotest.test_case "render disks" `Quick test_render_disks;
    Alcotest.test_case "palette cycles" `Quick test_palette_cycles;
  ]
