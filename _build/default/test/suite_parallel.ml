(* Tests for the multicore execution paths. *)

module Prng = Sa_util.Prng
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Derand = Sa_core.Derand
module Parallel = Sa_core.Parallel
module Workloads = Sa_exp.Workloads

let fixture seed = Workloads.protocol_instance ~seed ~n:12 ~k:2 ()

let test_parallel_rounding_feasible () =
  let inst = fixture 1 in
  let frac = Lp.solve_explicit inst in
  List.iter
    (fun domains ->
      let alloc = Parallel.solve_rounding ~domains ~trials_per_domain:2 ~seed:5 inst frac in
      Alcotest.(check bool)
        (Printf.sprintf "%d domains feasible" domains)
        true
        (Allocation.is_feasible inst alloc);
      Alcotest.(check bool) "below LP" true
        (Allocation.value inst alloc <= frac.Lp.objective +. 1e-6))
    [ 1; 2; 4 ]

let test_parallel_rounding_deterministic () =
  let inst = fixture 2 in
  let frac = Lp.solve_explicit inst in
  let a = Parallel.solve_rounding ~domains:3 ~trials_per_domain:2 ~seed:7 inst frac in
  let b = Parallel.solve_rounding ~domains:3 ~trials_per_domain:2 ~seed:7 inst frac in
  Alcotest.(check (float 1e-12)) "same value across runs"
    (Allocation.value inst a) (Allocation.value inst b)

let test_parallel_derand_matches_sequential () =
  let inst = fixture 3 in
  let frac = Lp.solve_explicit inst in
  let seq = Derand.algorithm1_derand inst frac in
  List.iter
    (fun domains ->
      let par = Parallel.derand1 ~domains inst frac in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "%d domains = sequential value" domains)
        (Allocation.value inst seq)
        (Allocation.value inst par);
      Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst par))
    [ 1; 2; 3 ]

let test_parallel_validation () =
  let inst = fixture 4 in
  let frac = Lp.solve_explicit inst in
  Alcotest.check_raises "bad domains"
    (Invalid_argument "Parallel.solve_rounding: domains must be >= 1") (fun () ->
      ignore (Parallel.solve_rounding ~domains:0 ~seed:1 inst frac));
  let winst, _ =
    Workloads.sinr_fixed_instance ~seed:5 ~n:8 ~k:2 ~scheme:Sa_wireless.Sinr.Uniform ()
  in
  let wfrac = Lp.solve_explicit winst in
  Alcotest.check_raises "derand1 needs unweighted"
    (Invalid_argument "Parallel.derand1: unweighted instances only") (fun () ->
      ignore (Parallel.derand1 winst wfrac))

let suite =
  [
    Alcotest.test_case "parallel rounding feasible" `Quick test_parallel_rounding_feasible;
    Alcotest.test_case "parallel rounding deterministic" `Quick test_parallel_rounding_deterministic;
    Alcotest.test_case "parallel derand = sequential" `Quick test_parallel_derand_matches_sequential;
    Alcotest.test_case "parallel validation" `Quick test_parallel_validation;
  ]
