(* Tests for allocation metrics. *)

module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Graph = Sa_graph.Graph
module Ordering = Sa_graph.Ordering
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Metrics = Sa_core.Metrics

let fixture () =
  let n = 4 and k = 2 in
  let bidders =
    Array.init n (fun _ ->
        Valuation.Xor
          [ (Bundle.full 2, 6.0); (Bundle.singleton 0, 4.0); (Bundle.singleton 1, 4.0) ])
  in
  Instance.make
    ~conflict:(Instance.Unweighted (Graph.create n))
    ~k ~bidders ~ordering:(Ordering.identity n) ~rho:1.0

let test_empty_allocation () =
  let inst = fixture () in
  let m = Metrics.compute inst (Allocation.empty 4) in
  Alcotest.(check (float 1e-12)) "welfare" 0.0 m.Metrics.welfare;
  Alcotest.(check int) "winners" 0 m.Metrics.winners;
  Alcotest.(check int) "channels used" 0 m.Metrics.channels_used;
  Alcotest.(check (float 1e-12)) "fairness trivially 1" 1.0
    m.Metrics.winner_value_fairness

let test_metrics_values () =
  let inst = fixture () in
  let alloc = Allocation.empty 4 in
  alloc.(0) <- Bundle.full 2;
  (* value 6 *)
  alloc.(1) <- Bundle.singleton 0;
  (* value 4 *)
  alloc.(2) <- Bundle.singleton 0;
  (* value 4 *)
  let m = Metrics.compute inst alloc in
  Alcotest.(check (float 1e-12)) "welfare" 14.0 m.Metrics.welfare;
  Alcotest.(check int) "winners" 3 m.Metrics.winners;
  Alcotest.(check int) "channels used" 2 m.Metrics.channels_used;
  (* holders: channel0 = 3, channel1 = 1 -> mean (3+1)/2 = 2, max 3 *)
  Alcotest.(check (float 1e-12)) "reuse mean" 2.0 m.Metrics.mean_holders_per_channel;
  Alcotest.(check int) "reuse max" 3 m.Metrics.max_holders_per_channel;
  (* channel welfare attribution: bidder 0 splits 6 over 2 channels *)
  Alcotest.(check (float 1e-12)) "channel 0 welfare" (3.0 +. 4.0 +. 4.0)
    m.Metrics.channel_welfare.(0);
  Alcotest.(check (float 1e-12)) "channel 1 welfare" 3.0 m.Metrics.channel_welfare.(1);
  (* bundle sizes: 2, 1, 1 -> mean 4/3 *)
  Alcotest.(check (float 1e-9)) "bundle mean" (4.0 /. 3.0) m.Metrics.bundle_size_mean;
  (* fairness over values [6;4;4] *)
  let expect = 14.0 *. 14.0 /. (3.0 *. ((6.0 *. 6.0) +. 16.0 +. 16.0)) in
  Alcotest.(check (float 1e-9)) "jain fairness" expect m.Metrics.winner_value_fairness

let test_channel_welfare_sums () =
  (* attribution sums back to total welfare *)
  let inst = Sa_exp.Workloads.protocol_instance ~seed:9 ~n:15 ~k:3 () in
  let frac = Sa_core.Lp_relaxation.solve_explicit inst in
  let g = Sa_util.Prng.create ~seed:10 in
  let alloc = Sa_core.Rounding.solve_adaptive ~trials:4 g inst frac in
  let m = Metrics.compute inst alloc in
  Alcotest.(check (float 1e-6)) "attribution sums to welfare" m.Metrics.welfare
    (Array.fold_left ( +. ) 0.0 m.Metrics.channel_welfare)

let suite =
  [
    Alcotest.test_case "empty allocation" `Quick test_empty_allocation;
    Alcotest.test_case "crafted metrics" `Quick test_metrics_values;
    Alcotest.test_case "channel attribution sums" `Quick test_channel_welfare_sums;
  ]
