(* Tests for channel availability masks and the primary-user model. *)

module Prng = Sa_util.Prng
module Point = Sa_geom.Point
module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Graph = Sa_graph.Graph
module Ordering = Sa_graph.Ordering
module Primary = Sa_wireless.Primary
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy
module Exact = Sa_core.Exact
module Oracle = Sa_core.Oracle_solver
module Serialize = Sa_core.Serialize

(* 4 bidders on an edgeless graph, 2 channels, everyone values both
   channels; bidder 0 is blocked from channel 0, bidder 1 from both. *)
let masked_instance () =
  let n = 4 and k = 2 in
  let graph = Graph.create n in
  let bidders =
    Array.init n (fun _ ->
        Valuation.Xor
          [ (Bundle.full 2, 10.0); (Bundle.singleton 0, 6.0); (Bundle.singleton 1, 6.0) ])
  in
  let inst =
    Instance.make ~conflict:(Instance.Unweighted graph) ~k ~bidders
      ~ordering:(Ordering.identity n) ~rho:1.0
  in
  Instance.with_available inst
    [| Bundle.singleton 1; Bundle.empty; Bundle.full 2; Bundle.full 2 |]

let test_feasibility_respects_masks () =
  let inst = masked_instance () in
  let ok = Allocation.empty 4 in
  ok.(0) <- Bundle.singleton 1;
  ok.(2) <- Bundle.full 2;
  Alcotest.(check bool) "allowed allocation feasible" true (Allocation.is_feasible inst ok);
  let bad = Allocation.empty 4 in
  bad.(0) <- Bundle.singleton 0;
  Alcotest.(check bool) "blocked channel infeasible" false
    (Allocation.is_feasible inst bad);
  let bad2 = Allocation.empty 4 in
  bad2.(1) <- Bundle.singleton 1;
  Alcotest.(check bool) "fully blocked bidder infeasible" false
    (Allocation.is_feasible inst bad2)

let test_exact_respects_masks () =
  let inst = masked_instance () in
  let e = Exact.solve inst in
  Alcotest.(check bool) "exact finished" true e.Exact.exact;
  Alcotest.(check bool) "exact feasible under masks" true
    (Allocation.is_feasible inst e.Exact.allocation);
  (* optimum: bidders 2,3 get both (10 each), bidder 0 gets channel 1 (6),
     bidder 1 gets nothing: 26. *)
  Alcotest.(check (float 1e-9)) "optimal value" 26.0 e.Exact.value

let test_lp_and_rounding_respect_masks () =
  let inst = masked_instance () in
  let frac = Lp.solve_explicit inst in
  (* no column may use a blocked channel *)
  Array.iter
    (fun c ->
      Alcotest.(check bool) "column respects mask" true
        (Bundle.equal c.Lp.bundle
           (Instance.restrict_bundle inst ~bidder:c.Lp.bidder c.Lp.bundle)))
    frac.Lp.columns;
  let g = Prng.create ~seed:7 in
  for _ = 1 to 20 do
    let alloc = Rounding.solve_adaptive ~trials:2 g inst frac in
    if not (Allocation.is_feasible inst alloc) then
      Alcotest.failf "rounding violated availability"
  done

let test_oracle_respects_masks () =
  let inst = masked_instance () in
  let frac, _ = Oracle.solve inst in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "oracle column respects mask" true
        (Bundle.equal c.Lp.bundle
           (Instance.restrict_bundle inst ~bidder:c.Lp.bidder c.Lp.bundle)))
    frac.Lp.columns;
  let explicit = Lp.solve_explicit inst in
  Alcotest.(check bool) "oracle matches explicit under masks" true
    (Float.abs (frac.Lp.objective -. explicit.Lp.objective) < 1e-5)

let test_greedy_respects_masks () =
  let inst = masked_instance () in
  let alloc = Greedy.by_value inst in
  Alcotest.(check bool) "greedy feasible under masks" true
    (Allocation.is_feasible inst alloc)

let test_serialize_masks () =
  let inst = masked_instance () in
  let inst' = Serialize.instance_of_string (Serialize.instance_to_string inst) in
  for v = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "mask of bidder %d survives" v)
      true
      (Bundle.equal inst.Instance.available.(v) inst'.Instance.available.(v))
  done

let test_masks_validated () =
  let inst = masked_instance () in
  Alcotest.check_raises "mask with channel >= k"
    (Invalid_argument "Instance.with_available: mask uses channel >= k") (fun () ->
      ignore (Instance.with_available inst (Array.make 4 (Bundle.full 3))));
  Alcotest.check_raises "wrong size"
    (Invalid_argument "Instance.with_available: size mismatch") (fun () ->
      ignore (Instance.with_available inst [| Bundle.full 2 |]))

(* ---------- primary users ------------------------------------------------- *)

let test_primary_masks_points () =
  let primaries =
    [
      Primary.make (Point.make 0.0 0.0) ~radius:2.0 ~channel:0;
      Primary.make (Point.make 10.0 0.0) ~radius:1.0 ~channel:1;
    ]
  in
  let points = [| Point.make 0.5 0.0; Point.make 10.2 0.0; Point.make 5.0 5.0 |] in
  let masks = Primary.masks_for_points ~k:3 primaries points in
  Alcotest.(check bool) "point 0 loses channel 0" true
    (Bundle.equal masks.(0) (Bundle.of_list [ 1; 2 ]));
  Alcotest.(check bool) "point 1 loses channel 1" true
    (Bundle.equal masks.(1) (Bundle.of_list [ 0; 2 ]));
  Alcotest.(check bool) "far point keeps everything" true
    (Bundle.equal masks.(2) (Bundle.full 3))

let test_primary_masks_links () =
  let primaries = [ Primary.make (Point.make 0.0 0.0) ~radius:1.5 ~channel:0 ] in
  let sys =
    Sa_wireless.Link.of_point_pairs
      [|
        (Point.make 0.5 0.0, Point.make 3.0 0.0);
        (* sender inside the zone *)
        (Point.make 5.0 0.0, Point.make 6.0 0.0);
        (* fully outside *)
      |]
  in
  let masks = Primary.masks_for_links ~k:2 primaries sys in
  Alcotest.(check bool) "link 0 blocked on channel 0" true
    (Bundle.equal masks.(0) (Bundle.singleton 1));
  Alcotest.(check bool) "link 1 free" true (Bundle.equal masks.(1) (Bundle.full 2))

let test_primary_end_to_end () =
  (* Full pipeline with primaries: generate, mask, solve, verify no winner
     uses a protected channel. *)
  let g = Prng.create ~seed:31 in
  let side = 12.0 in
  let pairs = Sa_geom.Placement.random_links g ~n:20 ~side ~min_len:0.5 ~max_len:1.5 in
  let sys = Sa_wireless.Link.of_point_pairs pairs in
  let graph = Sa_wireless.Protocol.conflict_graph sys ~delta:1.0 in
  let pi = Sa_wireless.Protocol.ordering sys in
  let k = 3 in
  let bidders =
    Array.init 20 (fun _ ->
        Sa_val.Gen.random_xor g ~k ~bids:3 ~max_bundle:2
          ~dist:(Sa_val.Gen.Uniform (1.0, 10.0)))
  in
  let primaries = Primary.random g ~count:4 ~side ~k ~rmin:2.0 ~rmax:4.0 in
  let masks = Primary.masks_for_links ~k primaries sys in
  let inst =
    Instance.with_available
      (Instance.make ~conflict:(Instance.Unweighted graph) ~k ~bidders ~ordering:pi
         ~rho:3.0)
      masks
  in
  let frac = Lp.solve_explicit inst in
  let rng = Prng.create ~seed:32 in
  let alloc = Rounding.solve_adaptive ~trials:4 rng inst frac in
  Alcotest.(check bool) "feasible with primaries" true
    (Allocation.is_feasible inst alloc);
  (* cross-check against the raw geometry *)
  Array.iteri
    (fun i bundle ->
      Bundle.iter
        (fun j ->
          if not (Bundle.mem j masks.(i)) then
            Alcotest.failf "winner %d uses protected channel %d" i j)
        bundle)
    alloc

let suite =
  [
    Alcotest.test_case "feasibility respects masks" `Quick test_feasibility_respects_masks;
    Alcotest.test_case "exact respects masks" `Quick test_exact_respects_masks;
    Alcotest.test_case "LP + rounding respect masks" `Quick test_lp_and_rounding_respect_masks;
    Alcotest.test_case "oracle respects masks" `Quick test_oracle_respects_masks;
    Alcotest.test_case "greedy respects masks" `Quick test_greedy_respects_masks;
    Alcotest.test_case "masks serialize" `Quick test_serialize_masks;
    Alcotest.test_case "mask validation" `Quick test_masks_validated;
    Alcotest.test_case "primary masks: points" `Quick test_primary_masks_points;
    Alcotest.test_case "primary masks: links" `Quick test_primary_masks_links;
    Alcotest.test_case "primary end to end" `Quick test_primary_end_to_end;
  ]
