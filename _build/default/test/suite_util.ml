(* Tests for Sa_util: PRNG, statistics, float tolerances, tables. *)

module Prng = Sa_util.Prng
module Stats = Sa_util.Stats
module Floats = Sa_util.Floats
module Table = Sa_util.Table

let test_prng_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Prng.float a 1.0) (Prng.float b 1.0)
  done

let test_prng_split_independence () =
  (* Splitting then drawing from the child does not perturb a copy that
     draws directly from the parent's post-split state. *)
  let a = Prng.create ~seed:11 in
  let child = Prng.split a in
  let snapshot = Prng.copy a in
  ignore (Prng.float child 1.0);
  ignore (Prng.float child 1.0);
  Alcotest.(check (float 0.0)) "parent unaffected by child draws"
    (Prng.float snapshot 1.0) (Prng.float a 1.0)

let test_prng_int_range () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v
  done

let test_prng_bernoulli_extremes () =
  let g = Prng.create ~seed:5 in
  Alcotest.(check bool) "p=0 never" false (Prng.bernoulli g 0.0);
  Alcotest.(check bool) "p=1 always" true (Prng.bernoulli g 1.0);
  Alcotest.(check bool) "p<0 clamped" false (Prng.bernoulli g (-0.5));
  Alcotest.(check bool) "p>1 clamped" true (Prng.bernoulli g 1.5)

let test_prng_bernoulli_mean () =
  let g = Prng.create ~seed:13 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli g 0.3 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean %.3f near 0.3" mean) true
    (Float.abs (mean -. 0.3) < 0.02)

let test_prng_permutation () =
  let g = Prng.create ~seed:17 in
  let p = Prng.permutation g 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true
    (Array.to_list sorted = List.init 50 Fun.id)

let test_prng_categorical () =
  let g = Prng.create ~seed:19 in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let i = Prng.categorical g [| 1.0; 2.0; 1.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "proportions approx 1:2:1" true
    (Float.abs (frac 0 -. 0.25) < 0.02
    && Float.abs (frac 1 -. 0.5) < 0.02
    && Float.abs (frac 2 -. 0.25) < 0.02)

let test_prng_sample_without_replacement () =
  let g = Prng.create ~seed:23 in
  let s = Prng.sample_without_replacement g 5 10 in
  Alcotest.(check int) "size" 5 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct = Array.to_list sorted |> List.sort_uniq compare |> List.length in
  Alcotest.(check int) "distinct" 5 distinct;
  Array.iter (fun v -> if v < 0 || v >= 10 then Alcotest.failf "out of range") s

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "variance" (5.0 /. 3.0) (Stats.variance xs);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "q0 = min" 1.0 (Stats.quantile xs 0.0);
  Alcotest.(check (float 1e-9)) "q1 = max" 4.0 (Stats.quantile xs 1.0)

let test_stats_summary () =
  let s = Stats.summarize [| 5.0; 1.0; 3.0 |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "median" 3.0 s.Stats.median

let test_stats_geometric_mean () =
  Alcotest.(check (float 1e-9)) "gm(2,8)" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |])

let test_stats_jain () =
  Alcotest.(check (float 1e-12)) "equal shares" 1.0
    (Stats.jain_index [| 2.0; 2.0; 2.0 |]);
  Alcotest.(check (float 1e-12)) "one dominates" (1.0 /. 4.0)
    (Stats.jain_index [| 1.0; 0.0; 0.0; 0.0 |]);
  Alcotest.(check (float 1e-12)) "empty" 1.0 (Stats.jain_index [||]);
  Alcotest.(check (float 1e-12)) "all zero" 1.0 (Stats.jain_index [| 0.0; 0.0 |]);
  Alcotest.check_raises "negative"
    (Invalid_argument "Stats.jain_index: negative sample") (fun () ->
      ignore (Stats.jain_index [| 1.0; -1.0 |]))

let test_stats_histogram () =
  let h = Stats.histogram [| 0.0; 0.5; 1.0; 1.5; 2.0 |] ~bins:2 in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples binned" 5 total

let test_floats () =
  Alcotest.(check bool) "approx_eq" true (Floats.approx_eq 1.0 (1.0 +. 1e-9));
  Alcotest.(check bool) "not approx_eq" false (Floats.approx_eq 1.0 1.1);
  Alcotest.(check bool) "leq with slack" true (Floats.leq (1.0 +. 1e-9) 1.0);
  Alcotest.(check bool) "not leq" false (Floats.leq 1.1 1.0);
  Alcotest.(check (float 1e-12)) "log2 8" 3.0 (Floats.log2 8.0);
  Alcotest.(check (float 1e-12)) "log2n floor at 1" 1.0 (Floats.log2n 2);
  Alcotest.(check (float 1e-12)) "log2n 16" 4.0 (Floats.log2n 16);
  Alcotest.(check (float 1e-12)) "clamp" 1.0 (Floats.clamp ~lo:0.0 ~hi:1.0 2.0)

let test_floats_kahan () =
  let xs = Array.make 1_000_000 0.1 in
  Alcotest.(check bool) "compensated sum accurate" true
    (Float.abs (Floats.sum xs -. 100_000.0) < 1e-6)

let test_table () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.index_opt s 'a' <> None);
  (* every line has the same width *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantiles are monotone in q" ~count:100
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 30) (float_range 0. 100.)) (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, (q1, q2)) ->
      let arr = Array.of_list xs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.quantile arr lo <= Stats.quantile arr hi +. 1e-9)

let prop_shuffle_preserves =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let g = Prng.create ~seed in
      let a = Array.of_list xs in
      Prng.shuffle g a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng split independence" `Quick test_prng_split_independence;
    Alcotest.test_case "prng int range" `Quick test_prng_int_range;
    Alcotest.test_case "prng bernoulli extremes" `Quick test_prng_bernoulli_extremes;
    Alcotest.test_case "prng bernoulli mean" `Quick test_prng_bernoulli_mean;
    Alcotest.test_case "prng permutation" `Quick test_prng_permutation;
    Alcotest.test_case "prng categorical proportions" `Quick test_prng_categorical;
    Alcotest.test_case "prng sampling w/o replacement" `Quick test_prng_sample_without_replacement;
    Alcotest.test_case "stats basics" `Quick test_stats_basic;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats geometric mean" `Quick test_stats_geometric_mean;
    Alcotest.test_case "stats jain index" `Quick test_stats_jain;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "float tolerances" `Quick test_floats;
    Alcotest.test_case "kahan summation" `Quick test_floats_kahan;
    Alcotest.test_case "table rendering" `Quick test_table;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
    QCheck_alcotest.to_alcotest prop_shuffle_preserves;
  ]
