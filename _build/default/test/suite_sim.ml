(* Tests for the epoch-based market simulation. *)

module Market = Sa_sim.Market
module Prng = Sa_util.Prng

let quick_config =
  {
    Market.default_config with
    Market.epochs = 10;
    arrivals_per_epoch = 3.0;
    k = 2;
  }

let test_determinism () =
  let a = Market.run ~seed:5 quick_config in
  let b = Market.run ~seed:5 quick_config in
  Alcotest.(check int) "same served" a.Market.total_served b.Market.total_served;
  Alcotest.(check (float 1e-12)) "same welfare" a.Market.total_welfare
    b.Market.total_welfare;
  let c = Market.run ~seed:6 quick_config in
  Alcotest.(check bool) "different seed differs (very likely)" true
    (a.Market.total_welfare <> c.Market.total_welfare
    || a.Market.total_served <> c.Market.total_served)

let test_conservation () =
  (* Every arrival is eventually served, abandoned, or still waiting. *)
  let s = Market.run ~seed:7 quick_config in
  Alcotest.(check bool) "served + abandoned <= arrived" true
    (s.Market.total_served + s.Market.total_abandoned <= s.Market.total_arrived);
  (* per-epoch stats sum to totals *)
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 s.Market.per_epoch in
  Alcotest.(check int) "served sums" s.Market.total_served
    (sum (fun e -> e.Market.served));
  Alcotest.(check int) "abandoned sums" s.Market.total_abandoned
    (sum (fun e -> e.Market.abandoned));
  Alcotest.(check int) "one stat row per epoch" quick_config.Market.epochs
    (List.length s.Market.per_epoch)

let test_welfare_below_lp () =
  let s = Market.run ~seed:9 quick_config in
  List.iter
    (fun e ->
      if e.Market.lp_value > 0.0 && e.Market.welfare > e.Market.lp_value +. 1e-6 then
        Alcotest.failf "epoch %d: welfare %.3f above LP %.3f" e.Market.epoch
          e.Market.welfare e.Market.lp_value)
    s.Market.per_epoch

let test_patience_bound () =
  (* No served bidder can have waited more than patience epochs. *)
  let cfg = { quick_config with Market.patience = 2 } in
  let s = Market.run ~seed:11 cfg in
  List.iter
    (fun e ->
      if e.Market.mean_wait_served > 2.0 +. 1e-9 then
        Alcotest.failf "epoch %d: mean wait %.2f beyond patience" e.Market.epoch
          e.Market.mean_wait_served)
    s.Market.per_epoch;
  Alcotest.(check bool) "mean wait bounded" true (s.Market.mean_wait <= 2.0 +. 1e-9)

let test_greedy_runs () =
  let cfg = { quick_config with Market.algorithm = Market.Greedy } in
  let s = Market.run ~seed:13 cfg in
  Alcotest.(check bool) "served someone" true (s.Market.total_served > 0);
  Alcotest.(check (float 1e-9)) "greedy collects no revenue" 0.0 s.Market.total_revenue

let test_mechanism_revenue () =
  let cfg =
    {
      quick_config with
      Market.algorithm = Market.Truthful_mechanism;
      epochs = 5;
      arrivals_per_epoch = 4.0;
    }
  in
  let s = Market.run ~seed:15 cfg in
  Alcotest.(check bool) "revenue non-negative" true (s.Market.total_revenue >= 0.0);
  Alcotest.(check bool) "some service" true (s.Market.total_served >= 0)

let test_zero_patience () =
  (* patience 0: losers abandon immediately; backlog never accumulates
     beyond one epoch's arrivals. *)
  let cfg = { quick_config with Market.patience = 0 } in
  let s = Market.run ~seed:17 cfg in
  Alcotest.(check int) "everyone resolved" s.Market.total_arrived
    (s.Market.total_served + s.Market.total_abandoned
    + List.length
        (List.filter (fun e -> e.Market.epoch = cfg.Market.epochs) s.Market.per_epoch)
      * 0
    + (s.Market.total_arrived - s.Market.total_served - s.Market.total_abandoned));
  (* the real check: waiting set after each epoch only holds that epoch's
     losers, which abandon next epoch -> mean wait of served is 0 *)
  Alcotest.(check (float 1e-9)) "served immediately or never" 0.0 s.Market.mean_wait

let test_validation () =
  Alcotest.check_raises "bad epochs" (Invalid_argument "Market.run: epochs must be >= 1")
    (fun () -> ignore (Market.run { quick_config with Market.epochs = 0 }));
  Alcotest.check_raises "bad urgency"
    (Invalid_argument "Market.run: urgency must be >= 1") (fun () ->
      ignore (Market.run { quick_config with Market.urgency = 0.5 }))

let suite =
  [
    Alcotest.test_case "deterministic in seed" `Quick test_determinism;
    Alcotest.test_case "conservation of bidders" `Quick test_conservation;
    Alcotest.test_case "welfare below LP per epoch" `Quick test_welfare_below_lp;
    Alcotest.test_case "patience bounds waiting" `Quick test_patience_bound;
    Alcotest.test_case "greedy variant" `Quick test_greedy_runs;
    Alcotest.test_case "mechanism variant collects payments" `Slow test_mechanism_revenue;
    Alcotest.test_case "zero patience" `Quick test_zero_patience;
    Alcotest.test_case "config validation" `Quick test_validation;
  ]
