(* Tests for the plain-text instance/allocation (de)serialization. *)

module Prng = Sa_util.Prng
module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Serialize = Sa_core.Serialize
module Workloads = Sa_exp.Workloads

(* Structural equality of instances via their observable behaviour: sizes,
   parameters, pairwise conflict weights on all channels, valuations on all
   bundles (k is small in the fixtures). *)
let instances_equal a b =
  let n = Instance.n a and k = a.Instance.k in
  Instance.n b = n
  && b.Instance.k = k
  && Float.abs (a.Instance.rho -. b.Instance.rho) < 1e-12
  && Sa_graph.Ordering.to_order a.Instance.ordering
     = Sa_graph.Ordering.to_order b.Instance.ordering
  &&
  let weights_equal = ref true in
  for j = 0 to k - 1 do
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v then
          if
            Float.abs
              (Instance.wbar a ~channel:j u v -. Instance.wbar b ~channel:j u v)
            > 1e-12
          then weights_equal := false
      done
    done
  done;
  let values_equal = ref true in
  List.iter
    (fun mask ->
      let bundle = Bundle.of_int mask in
      for v = 0 to n - 1 do
        if
          Float.abs
            (Valuation.value a.Instance.bidders.(v) bundle
            -. Valuation.value b.Instance.bidders.(v) bundle)
          > 1e-12
        then values_equal := false
      done)
    (List.map Bundle.to_int (Bundle.all_subsets k));
  !weights_equal && !values_equal

let roundtrip inst =
  Serialize.instance_of_string (Serialize.instance_to_string inst)

let test_roundtrip_unweighted () =
  let inst = Workloads.protocol_instance ~seed:11 ~n:12 ~k:3 () in
  Alcotest.(check bool) "roundtrip equal" true (instances_equal inst (roundtrip inst))

let test_roundtrip_weighted () =
  let inst, _ =
    Workloads.sinr_fixed_instance ~seed:12 ~n:10 ~k:2
      ~scheme:Sa_wireless.Sinr.Uniform ()
  in
  Alcotest.(check bool) "roundtrip equal" true (instances_equal inst (roundtrip inst))

let test_roundtrip_per_channel () =
  let inst = Workloads.asymmetric_instance ~seed:13 ~n:12 ~k:3 ~d:4 in
  Alcotest.(check bool) "roundtrip equal" true (instances_equal inst (roundtrip inst))

let test_roundtrip_per_channel_weighted () =
  let inst, _ = Workloads.asymmetric_weighted_instance ~seed:14 ~n:8 ~k:2 () in
  Alcotest.(check bool) "roundtrip equal" true (instances_equal inst (roundtrip inst))

let test_roundtrip_all_languages () =
  let graph = Sa_graph.Graph.of_edges 6 [ (0, 1); (2, 3); (4, 5) ] in
  let bidders =
    [|
      Valuation.Xor [ (Bundle.of_list [ 0 ], 3.5); (Bundle.of_list [ 0; 1 ], 5.25) ];
      Valuation.Additive [| 1.0; 2.0 |];
      Valuation.Unit_demand [| 4.0; 0.5 |];
      Valuation.Symmetric [| 0.0; 2.0; 3.0 |];
      Valuation.Budget_additive { values = [| 2.0; 3.0 |]; budget = 4.0 };
      Valuation.Or_bids [ (Bundle.singleton 0, 1.5); (Bundle.singleton 1, 2.5) ];
    |]
  in
  let inst =
    Instance.make ~conflict:(Instance.Unweighted graph) ~k:2 ~bidders
      ~ordering:(Sa_graph.Ordering.identity 6) ~rho:1.0
  in
  Alcotest.(check bool) "roundtrip equal" true (instances_equal inst (roundtrip inst))

let test_lp_value_survives () =
  (* End-to-end: the LP optimum of a reloaded instance is identical. *)
  let inst = Workloads.protocol_instance ~seed:15 ~n:12 ~k:2 () in
  let a = (Sa_core.Lp_relaxation.solve_explicit inst).Sa_core.Lp_relaxation.objective in
  let b =
    (Sa_core.Lp_relaxation.solve_explicit (roundtrip inst)).Sa_core.Lp_relaxation.objective
  in
  Alcotest.(check (float 1e-9)) "same LP optimum" a b

let test_allocation_roundtrip () =
  let alloc = Allocation.empty 5 in
  alloc.(1) <- Bundle.of_list [ 0; 2 ];
  alloc.(4) <- Bundle.of_list [ 1 ];
  let alloc' = Serialize.allocation_of_string (Serialize.allocation_to_string alloc) in
  Alcotest.(check bool) "equal" true (alloc = alloc')

let test_file_roundtrip () =
  let inst = Workloads.disk_instance ~seed:16 ~n:10 ~k:2 () in
  let path = Filename.temp_file "specauction" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save_instance path inst;
      Alcotest.(check bool) "file roundtrip" true
        (instances_equal inst (Serialize.load_instance path)))

let test_malformed_rejected () =
  let check_fails name s =
    match Serialize.instance_of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "%s: malformed input accepted" name
  in
  check_fails "empty" "";
  check_fails "bad header" "nonsense 1\n";
  check_fails "bad version" "specauction-instance 99\n";
  check_fails "truncated"
    "specauction-instance 1\nn 2 k 1 rho 1\nordering 0 1\nconflict unweighted\n";
  check_fails "bad edge"
    "specauction-instance 1\nn 2 k 1 rho 1\nordering 0 1\nconflict unweighted\nedge 0 x\nend\nend\n"

let prop_roundtrip_random =
  QCheck.Test.make ~name:"serialize roundtrip (random protocol instances)"
    ~count:20
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let inst = Workloads.protocol_instance ~seed ~n:10 ~k:2 () in
      instances_equal inst (roundtrip inst))

let suite =
  [
    Alcotest.test_case "roundtrip unweighted" `Quick test_roundtrip_unweighted;
    Alcotest.test_case "roundtrip edge-weighted" `Quick test_roundtrip_weighted;
    Alcotest.test_case "roundtrip per-channel" `Quick test_roundtrip_per_channel;
    Alcotest.test_case "roundtrip per-channel-weighted" `Quick test_roundtrip_per_channel_weighted;
    Alcotest.test_case "roundtrip all bidding languages" `Quick test_roundtrip_all_languages;
    Alcotest.test_case "LP value survives reload" `Quick test_lp_value_survives;
    Alcotest.test_case "allocation roundtrip" `Quick test_allocation_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "malformed inputs rejected" `Quick test_malformed_rejected;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
  ]
