(* Physical (SINR) model with power control — the Theorem 13 pipeline.

   30 device-to-device links bid for 3 channels.  Interference follows the
   physical model; transmission powers are NOT fixed in advance: the auction
   first allocates channels by rounding the LP over the Theorem-13
   tau-weighted conflict graph, then runs the Kesselheim power-control
   procedure per channel to find powers making every channel's winner set
   SINR-feasible.

   Run with: dune exec examples/sinr_powercontrol.exe *)

module Prng = Sa_util.Prng
module Placement = Sa_geom.Placement
module Link = Sa_wireless.Link
module Sinr = Sa_wireless.Sinr
module Sinr_graph = Sa_wireless.Sinr_graph
module Power_control = Sa_wireless.Power_control
module Inductive = Sa_graph.Inductive
module Vgen = Sa_val.Gen
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Bundle = Sa_val.Bundle

let () =
  let g = Prng.create ~seed:4242 in
  let n = 30 and k = 3 in
  let prm = { Sinr.alpha = 3.0; beta = 1.5; noise = 0.0 } in

  let pairs = Placement.random_links g ~n ~side:30.0 ~min_len:0.5 ~max_len:2.0 in
  let sys = Link.of_point_pairs pairs in

  (* Theorem 13 weights.  The paper's 1/tau scale is a worst-case constant
     (here 432) that makes independent sets tiny; the experiments (E5) show
     the power-control procedure succeeds empirically at far milder scales,
     so this example uses the ablation knob [weight_scale].  Per-channel
     SINR feasibility is verified explicitly below either way. *)
  let wg = Sinr_graph.thm13_graph ~weight_scale:3.0 sys prm in
  let pi = Sinr_graph.ordering sys in
  let rho_est = (Inductive.rho_weighted ~node_limit:200_000 wg pi).Inductive.rho in

  let bidders =
    Array.init n (fun _ ->
        Vgen.random_xor g ~k ~bids:2 ~max_bundle:1 ~dist:(Vgen.Uniform (1.0, 10.0)))
  in
  let inst =
    Instance.make ~conflict:(Instance.Edge_weighted wg) ~k ~bidders ~ordering:pi
      ~rho:(Float.max 1.0 rho_est)
  in

  let frac = Lp.solve_explicit inst in
  let alloc = Rounding.solve_adaptive ~trials:8 g inst frac in

  Printf.printf "SINR auction with power control (Theorem 13)\n";
  Printf.printf "  links: %d  channels: %d  alpha=%.1f beta=%.1f\n" n k prm.Sinr.alpha
    prm.Sinr.beta;
  Printf.printf "  tau = %.5f (weights scaled by 1/tau = %.0f)\n" (Sinr_graph.tau prm)
    (1.0 /. Sinr_graph.tau prm);
  Printf.printf "  estimated rho(pi) of the weighted graph: %.2f\n" rho_est;
  Printf.printf "  LP optimum: %.2f   rounded welfare: %.2f (feasible: %b)\n"
    frac.Lp.objective
    (Allocation.value inst alloc)
    (Allocation.is_feasible inst alloc);

  (* Stage 2: per-channel power control. *)
  Printf.printf "\nPer-channel power control:\n";
  for j = 0 to k - 1 do
    let winners = Allocation.holders alloc ~k ~channel:j in
    let r = Power_control.assign sys prm winners in
    Printf.printf "  channel %d: %d links, SINR-feasible powers: %b\n" j
      (List.length winners) r.Power_control.feasible;
    List.iter
      (fun i ->
        Printf.printf "    link %2d  length %.2f  power %.4g  SINR %.2f\n" i
          (Link.length sys i) r.Power_control.powers.(i)
          (Sinr.sinr sys prm ~powers:r.Power_control.powers ~active:winners i))
      winners
  done
