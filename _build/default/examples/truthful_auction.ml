(* Truthful-in-expectation auction (Section 5: Lavi-Swamy).

   A regulator wants strategy-proofness, not just welfare: bidders should
   have no incentive to misreport.  This example runs the full Lavi-Swamy
   pipeline — LP optimum, decomposition of x*/alpha into a lottery over
   feasible allocations, scaled VCG payments — and then audits truthfulness
   empirically by letting one bidder try misreports.

   Run with: dune exec examples/truthful_auction.exe *)

module Prng = Sa_util.Prng
module Generators = Sa_graph.Generators
module Inductive = Sa_graph.Inductive
module Valuation = Sa_val.Valuation
module Vgen = Sa_val.Gen
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Decomposition = Sa_mech.Decomposition
module Lavi_swamy = Sa_mech.Lavi_swamy

let () =
  let g = Prng.create ~seed:99 in
  let n = 10 and k = 2 in
  (* A clique conflict graph = a regular combinatorial auction: every pair
     of bidders conflicts, so winners displace losers and the scaled VCG
     payments are visibly non-zero.  On a clique any ordering has rho = 1
     and the LP's interference constraints bind. *)
  let graph = Sa_graph.Graph.clique n in
  let pi, _ = Inductive.degeneracy_ordering graph in
  let bidders =
    Array.init n (fun _ ->
        Vgen.random_xor g ~k ~bids:2 ~max_bundle:2 ~dist:(Vgen.Uniform (1.0, 10.0)))
  in
  let inst =
    Instance.make ~conflict:(Instance.Unweighted graph) ~k ~bidders ~ordering:pi
      ~rho:1.0
  in

  let alpha = 2.0 *. Rounding.guarantee inst in
  let o = Lavi_swamy.run ~alpha g inst in
  let lot = o.Lavi_swamy.lottery in

  Printf.printf "Truthful spectrum auction (Lavi-Swamy, Section 5)\n";
  Printf.printf "  bidders: %d  channels: %d  alpha: %.1f\n" n k o.Lavi_swamy.alpha;
  Printf.printf "  LP optimum b* = %.3f\n" o.Lavi_swamy.fractional.Lp.objective;
  Printf.printf "  lottery over %d feasible allocations (decomposition verified: %b)\n"
    (Array.length lot.Decomposition.allocations)
    (Decomposition.verify inst o.Lavi_swamy.fractional lot);
  Printf.printf "  E[welfare] = b*/alpha = %.3f\n"
    (o.Lavi_swamy.fractional.Lp.objective /. o.Lavi_swamy.alpha);

  Printf.printf "\nPer-bidder expectations:\n";
  Printf.printf "  %-6s %-12s %-12s %-12s\n" "bidder" "E[value]" "E[payment]" "E[utility]";
  for v = 0 to n - 1 do
    let ev = Decomposition.expected_value_of_bidder inst lot v in
    let ep = Lavi_swamy.expected_payment o v in
    if ev > 1e-9 then
      Printf.printf "  %-6d %-12.4f %-12.4f %-12.4f\n" v ev ep (ev -. ep)
  done;

  (* One realised outcome. *)
  let alloc, pay = Lavi_swamy.sample g inst o in
  Printf.printf "\nOne realised outcome (feasible: %b):\n"
    (Allocation.is_feasible inst alloc);
  Array.iteri
    (fun v b ->
      if not (Sa_val.Bundle.is_empty b) then
        Printf.printf "  bidder %d gets %s, pays %.3f\n" v
          (Format.asprintf "%a" Sa_val.Bundle.pp b)
          pay.(v))
    alloc;

  (* Truthfulness audit for bidder 0. *)
  Printf.printf "\nTruthfulness audit (bidder 0, expected utility vs misreports):\n";
  let u_truth =
    Lavi_swamy.expected_utility inst o ~bidder:0
      ~true_valuation:inst.Instance.bidders.(0)
  in
  Printf.printf "  truthful report: %.5f\n" u_truth;
  List.iter
    (fun factor ->
      let misreported = Array.copy inst.Instance.bidders in
      misreported.(0) <- Valuation.scale misreported.(0) factor;
      let mis_inst =
        Instance.make ~conflict:inst.Instance.conflict ~k ~bidders:misreported
          ~ordering:pi ~rho:inst.Instance.rho
      in
      let g' = Prng.create ~seed:99 in
      let o' = Lavi_swamy.run ~alpha g' mis_inst in
      let u =
        Lavi_swamy.expected_utility mis_inst o' ~bidder:0
          ~true_valuation:inst.Instance.bidders.(0)
      in
      Printf.printf "  report scaled x%-4.1f: %.5f%s\n" factor u
        (if u <= u_truth +. 1e-6 then "  (no gain)" else "  (GAIN!)"))
    [ 0.0; 0.3; 0.7; 1.5; 3.0 ]
