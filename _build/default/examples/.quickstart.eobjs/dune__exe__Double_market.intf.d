examples/double_market.mli:
