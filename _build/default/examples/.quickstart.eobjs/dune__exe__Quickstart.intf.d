examples/quickstart.mli:
