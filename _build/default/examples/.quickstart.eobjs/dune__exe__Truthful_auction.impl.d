examples/truthful_auction.ml: Array Format List Printf Sa_core Sa_graph Sa_mech Sa_util Sa_val
