examples/urban_smallcells.mli:
