examples/quickstart.ml: Array Float Format Printf Sa_core Sa_geom Sa_graph Sa_util Sa_val Sa_viz Sa_wireless
