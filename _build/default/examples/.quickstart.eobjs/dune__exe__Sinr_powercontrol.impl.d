examples/sinr_powercontrol.ml: Array Float List Printf Sa_core Sa_geom Sa_graph Sa_util Sa_val Sa_wireless
