examples/market_simulation.mli:
