examples/market_simulation.ml: Format List Sa_sim
