examples/asymmetric_channels.mli:
