examples/primary_protection.mli:
