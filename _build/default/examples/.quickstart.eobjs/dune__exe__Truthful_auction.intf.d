examples/truthful_auction.mli:
