examples/sinr_powercontrol.mli:
