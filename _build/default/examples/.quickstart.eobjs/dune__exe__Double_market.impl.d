examples/double_market.ml: Array List Printf Sa_geom Sa_graph Sa_mech Sa_util Sa_wireless String
