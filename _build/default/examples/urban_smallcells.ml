(* Urban small cells: the transmitter scenario of Appendix A.

   A city-centre operator auctions 6 channels to 40 small-cell base
   stations clustered around three business districts.  Each base station
   covers a disk; stations whose disks intersect may not share a channel
   (disk-graph conflicts, Proposition 15: rho <= 5 under the decreasing-
   radius ordering).  Stations have symmetric valuations with diminishing
   returns over the number of channels (more channels = more capacity).

   Run with: dune exec examples/urban_smallcells.exe *)

module Prng = Sa_util.Prng
module Placement = Sa_geom.Placement
module Disk = Sa_wireless.Disk
module Inductive = Sa_graph.Inductive
module Valuation = Sa_val.Valuation
module Vgen = Sa_val.Gen
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy
module Bundle = Sa_val.Bundle

let () =
  let g = Prng.create ~seed:77 in
  let n = 40 and k = 6 in

  (* Clustered placement: stations concentrate in three districts. *)
  let points = Placement.clustered g ~n ~side:8.0 ~clusters:3 ~spread:0.9 in
  let radii = Array.init n (fun _ -> Prng.uniform_in g 0.4 1.0) in
  let disks = Disk.make points radii in
  let graph = Disk.conflict_graph disks in
  let pi = Disk.ordering disks in
  let rho_measured = (Inductive.rho_unweighted graph pi).Inductive.rho in

  (* Symmetric (capacity-style) valuations: concave in #channels. *)
  let bidders =
    Array.init n (fun _ -> Vgen.random_symmetric g ~k ~dist:(Vgen.Pareto { alpha = 2.0; xmin = 2.0 }) ~concave:true)
  in
  let inst =
    Instance.make ~conflict:(Instance.Unweighted graph) ~k ~bidders ~ordering:pi
      ~rho:(Float.max 1.0 rho_measured)
  in

  (* Symmetric valuations have exponential explicit supports; use the
     demand-oracle column generation of Section 3.1 instead. *)
  let frac, stats = Sa_core.Oracle_solver.solve inst in
  let alloc = Rounding.solve_adaptive ~trials:8 g inst frac in
  let greedy = Greedy.by_value inst in

  Printf.printf "Urban small-cell auction (disk graph, clustered city)\n";
  Printf.printf "  stations: %d   channels: %d   conflict edges: %d\n" n k
    (Sa_graph.Graph.num_edges graph);
  Printf.printf "  measured rho(pi) = %.0f   (Prop 15 bound: %d)\n" rho_measured
    Disk.rho_bound;
  Printf.printf "  LP solved by column generation: %d columns, %d master solves\n"
    stats.Sa_core.Oracle_solver.columns_generated
    stats.Sa_core.Oracle_solver.iterations;
  Printf.printf "  (a naive explicit LP would enumerate %d columns)\n"
    (n * ((1 lsl k) - 1));
  Printf.printf "  LP optimum: %.2f\n" frac.Lp.objective;
  Printf.printf "  Algorithm 1 welfare: %.2f (feasible: %b)\n"
    (Allocation.value inst alloc)
    (Allocation.is_feasible inst alloc);
  Printf.printf "  greedy baseline:     %.2f\n" (Allocation.value inst greedy);

  (* Channel-usage summary: how often is each channel reused across town? *)
  Printf.printf "\nChannel reuse (stations per channel):\n";
  for j = 0 to k - 1 do
    Printf.printf "  channel %d: %d stations\n" j
      (List.length (Allocation.holders alloc ~k ~channel:j))
  done;
  let winners = List.length (Allocation.allocated_bidders alloc) in
  Printf.printf "%d of %d stations win at least one channel\n" winners n;

  (* Deployment map: disks coloured by their first allocated channel. *)
  let svg =
    Sa_viz.Render.disks ~alloc ~title:"urban small cells: winners by channel" disks
  in
  Sa_viz.Render.write "urban_smallcells.svg" svg;
  Printf.printf "deployment map written to urban_smallcells.svg\n"
