(* Asymmetric channels (Section 6): a different conflict graph per channel.

   Realistic cause: a TV-band channel is blocked by a primary transmitter in
   one district, a radar band has a wider guard zone, etc.  We model 3
   channels over the same 30 links, each with its own protocol-model
   conflict graph (different guard parameters Delta and per-channel primary
   exclusion zones), and run the Section-6 variant of the rounding
   (scaling 1/2k*rho).

   Run with: dune exec examples/asymmetric_channels.exe *)

module Prng = Sa_util.Prng
module Point = Sa_geom.Point
module Placement = Sa_geom.Placement
module Graph = Sa_graph.Graph
module Link = Sa_wireless.Link
module Protocol = Sa_wireless.Protocol
module Inductive = Sa_graph.Inductive
module Vgen = Sa_val.Gen
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding

let () =
  let g = Prng.create ~seed:314 in
  let n = 30 and k = 3 in
  let side = 10.0 in
  let pairs = Placement.random_links g ~n ~side ~min_len:0.5 ~max_len:1.5 in
  let sys = Link.of_point_pairs pairs in
  let pi = Protocol.ordering sys in

  (* Channel 0: standard guard zone.  Channel 1: wide guard zone (radar
     band).  Channel 2: standard guard zone + a primary user at the centre
     blocking all links within radius 3 (clique among them). *)
  let deltas = [| 0.5; 2.0; 0.5 |] in
  let graphs = Array.map (fun d -> Protocol.conflict_graph sys ~delta:d) deltas in
  let centre = Point.make (side /. 2.0) (side /. 2.0) in
  let blocked =
    List.filter
      (fun i ->
        let l = Link.link sys i in
        match Sa_geom.Metric.points (Link.metric sys) with
        | Some pts -> Point.dist pts.(l.Link.sender) centre < 3.0
        | None -> false)
      (List.init n Fun.id)
  in
  List.iter
    (fun i ->
      List.iter (fun j -> if i < j then Graph.add_edge graphs.(2) i j) blocked)
    blocked;

  (* rho for the LP: the worst measured rho(pi) across channels. *)
  let rho =
    Array.fold_left
      (fun acc gr -> Float.max acc (Inductive.rho_unweighted gr pi).Inductive.rho)
      1.0 graphs
  in
  let bidders =
    Array.init n (fun _ ->
        Vgen.random_xor g ~k ~bids:3 ~max_bundle:2 ~dist:(Vgen.Uniform (1.0, 8.0)))
  in
  let inst =
    Instance.make ~conflict:(Instance.Per_channel graphs) ~k ~bidders ~ordering:pi ~rho
  in

  let frac = Lp.solve_explicit inst in
  let alloc = Rounding.solve_adaptive ~trials:8 g inst frac in

  Printf.printf "Asymmetric-channel auction (Section 6)\n";
  Printf.printf "  links: %d, channels: %d, worst rho(pi): %.0f\n" n k rho;
  Array.iteri
    (fun j gr ->
      Printf.printf "  channel %d: delta=%.1f, %d conflict edges%s\n" j deltas.(j)
        (Graph.num_edges gr)
        (if j = 2 then Printf.sprintf " (primary blocks %d links)" (List.length blocked)
         else ""))
    graphs;
  Printf.printf "  LP optimum: %.3f\n" frac.Lp.objective;
  Printf.printf "  Section-6 rounding welfare: %.3f (feasible: %b)\n"
    (Allocation.value inst alloc)
    (Allocation.is_feasible inst alloc);
  Printf.printf "  guarantee: within factor %.0f of the LP (4k*rho)\n"
    (Rounding.guarantee inst);
  Printf.printf "\nChannel usage:\n";
  for j = 0 to k - 1 do
    Printf.printf "  channel %d: %d links\n" j
      (List.length (Allocation.holders alloc ~k ~channel:j))
  done
