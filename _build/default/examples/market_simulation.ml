(* "eBay in the Sky": the operational loop around the auction.

   The paper's setting is a market where short-term licences are auctioned
   on a regular basis (§1).  This example runs 30 epochs of that loop:
   links arrive over time, bid, wait (growing more urgent), win and leave —
   or abandon.  We compare the LP-rounding allocator against greedy on the
   identical arrival sequence, then run the truthful mechanism to show
   revenue collection.

   Run with: dune exec examples/market_simulation.exe *)

module Market = Sa_sim.Market

let () =
  let base =
    {
      Market.default_config with
      Market.epochs = 30;
      arrivals_per_epoch = 5.0;
      k = 3;
      patience = 4;
    }
  in
  let show cfg seed =
    let s = Market.run ~seed cfg in
    Format.printf "%a@." Market.pp_summary s;
    s
  in
  Format.printf "=== LP rounding allocator ===@.";
  let lp = show { base with Market.algorithm = Market.Lp_rounding } 42 in
  Format.printf "@.=== greedy allocator (same arrivals) ===@.";
  let gr = show { base with Market.algorithm = Market.Greedy } 42 in
  Format.printf "@.=== truthful mechanism (smaller market) ===@.";
  let mech =
    show
      {
        base with
        Market.algorithm = Market.Truthful_mechanism;
        epochs = 10;
        arrivals_per_epoch = 3.0;
        k = 2;
      }
      42
  in
  Format.printf "@.Comparison (same 30-epoch arrival process):@.";
  Format.printf "  welfare    LP %.1f vs greedy %.1f@." lp.Market.total_welfare
    gr.Market.total_welfare;
  Format.printf "  service    LP %.1f%% vs greedy %.1f%%@."
    (100.0 *. lp.Market.service_rate)
    (100.0 *. gr.Market.service_rate);
  Format.printf "  mechanism revenue over 10 epochs: %.2f@." mech.Market.total_revenue;

  Format.printf "@.Epoch trace (LP rounding):@.";
  Format.printf "  %-6s %-7s %-7s %-10s %-9s@." "epoch" "active" "served" "welfare"
    "abandoned";
  List.iter
    (fun e ->
      if e.Market.epoch mod 3 = 0 then
        Format.printf "  %-6d %-7d %-7d %-10.1f %-9d@." e.Market.epoch e.Market.active
          e.Market.served e.Market.welfare e.Market.abandoned)
    lp.Market.per_epoch
