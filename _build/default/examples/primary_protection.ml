(* TV white space: primary users constrain who may use which channel.

   The paper's introduction motivates exactly this: "the presence of a
   primary user might allow access to a channel only for a subset of mobile
   devices located in selected areas."  Here 3 TV transmitters each hold a
   licence on one of 4 channels; secondary links inside a transmitter's
   protection zone may not use its channel.  The availability masks feed
   the same LP + rounding pipeline, and the final allocation is verified
   against the raw geometry.

   Run with: dune exec examples/primary_protection.exe *)

module Prng = Sa_util.Prng
module Point = Sa_geom.Point
module Placement = Sa_geom.Placement
module Bundle = Sa_val.Bundle
module Link = Sa_wireless.Link
module Protocol = Sa_wireless.Protocol
module Primary = Sa_wireless.Primary
module Inductive = Sa_graph.Inductive
module Vgen = Sa_val.Gen
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding

let () =
  let g = Prng.create ~seed:1337 in
  let n = 30 and k = 4 and side = 14.0 in

  let pairs = Placement.random_links g ~n ~side ~min_len:0.5 ~max_len:1.5 in
  let sys = Link.of_point_pairs pairs in
  let graph = Protocol.conflict_graph sys ~delta:1.0 in
  let pi = Protocol.ordering sys in
  let rho = Float.max 1.0 (Inductive.rho_unweighted graph pi).Inductive.rho in

  (* Three TV transmitters with large protection zones. *)
  let primaries =
    [
      Primary.make (Point.make 3.0 3.0) ~radius:4.0 ~channel:0;
      Primary.make (Point.make 11.0 4.0) ~radius:3.5 ~channel:1;
      Primary.make (Point.make 7.0 11.0) ~radius:4.5 ~channel:2;
    ]
  in
  let masks = Primary.masks_for_links ~k primaries sys in

  let bidders =
    Array.init n (fun _ ->
        Vgen.random_xor g ~k ~bids:3 ~max_bundle:2 ~dist:(Vgen.Uniform (1.0, 10.0)))
  in
  let inst =
    Instance.with_available
      (Instance.make ~conflict:(Instance.Unweighted graph) ~k ~bidders ~ordering:pi
         ~rho)
      masks
  in

  let blocked =
    Array.to_list masks
    |> List.filter (fun m -> not (Bundle.equal m (Bundle.full k)))
    |> List.length
  in
  Printf.printf "TV white-space auction with primary protection\n";
  Printf.printf "  links: %d  channels: %d  rho(pi): %.0f\n" n k rho;
  Printf.printf "  primaries: %d zones, %d links lose at least one channel\n"
    (List.length primaries) blocked;

  let frac = Lp.solve_explicit inst in
  let alloc = Rounding.solve_adaptive ~trials:8 g inst frac in
  Printf.printf "  LP optimum: %.2f   welfare: %.2f  (feasible: %b)\n"
    frac.Lp.objective
    (Allocation.value inst alloc)
    (Allocation.is_feasible inst alloc);

  (* Contrast: the same auction without primaries. *)
  let inst_free =
    Instance.make ~conflict:(Instance.Unweighted graph) ~k ~bidders ~ordering:pi ~rho
  in
  let frac_free = Lp.solve_explicit inst_free in
  let alloc_free = Rounding.solve_adaptive ~trials:8 g inst_free frac_free in
  Printf.printf "  without primaries:  LP %.2f   welfare %.2f\n"
    frac_free.Lp.objective
    (Allocation.value inst_free alloc_free);
  Printf.printf "  welfare cost of protection: %.1f%%\n"
    (100.0
    *. (1.0
       -. (Allocation.value inst alloc /. Float.max 1e-9 (Allocation.value inst_free alloc_free))));

  (* Verify winners against the raw geometry. *)
  let violations = ref 0 in
  Array.iteri
    (fun i bundle ->
      Bundle.iter (fun j -> if not (Bundle.mem j masks.(i)) then incr violations) bundle)
    alloc;
  Printf.printf "  protected-channel violations: %d\n" !violations;

  Printf.printf "\nPer-channel usage (winners / links allowed on that channel):\n";
  for j = 0 to k - 1 do
    let allowed =
      Array.to_list masks |> List.filter (fun m -> Bundle.mem j m) |> List.length
    in
    Printf.printf "  channel %d: %d / %d\n" j
      (List.length (Allocation.holders alloc ~k ~channel:j))
      allowed
  done
