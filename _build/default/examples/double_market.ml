(* Double auction: primary licence holders SELL, secondary users BUY.

   The single-sided mechanisms assume the regulator owns the spectrum; in
   the secondary market of the paper's introduction the channels belong to
   primary licensees who lease them out.  This example runs the TRUST-style
   truthful double auction (related work [32]) over a protocol-model
   conflict graph: buyer groups are independent sets, McAfee clearing sets
   budget-balanced prices.

   Run with: dune exec examples/double_market.exe *)

module Prng = Sa_util.Prng
module Placement = Sa_geom.Placement
module Link = Sa_wireless.Link
module Protocol = Sa_wireless.Protocol
module Da = Sa_mech.Double_auction

let () =
  let g = Prng.create ~seed:2718 in
  let n = 24 and m = 5 in

  let pairs = Placement.random_links g ~n ~side:10.0 ~min_len:0.5 ~max_len:1.5 in
  let sys = Link.of_point_pairs pairs in
  let graph = Protocol.conflict_graph sys ~delta:1.0 in

  let bids = Array.init n (fun _ -> Prng.uniform_in g 1.0 10.0) in
  let asks = Array.init m (fun _ -> Prng.uniform_in g 3.0 12.0) in

  let o = Da.run graph ~bids ~asks in

  Printf.printf "Double spectrum auction (TRUST-style, McAfee clearing)\n";
  Printf.printf "  buyers: %d secondary links (%d conflict edges)\n" n
    (Sa_graph.Graph.num_edges graph);
  Printf.printf "  sellers: %d primary licensees, asks: %s\n" m
    (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%.1f") asks)));
  Printf.printf "  buyer groups formed: %d (independent sets)\n"
    (Array.length o.Da.groups);
  Printf.printf "  channels traded: %d\n" o.Da.traded;
  Printf.printf "  buyer welfare: %.2f\n" o.Da.buyer_welfare;
  Printf.printf "  payments %.2f  -> sellers %.2f  (market-maker surplus %.2f)\n"
    (Array.fold_left ( +. ) 0.0 o.Da.buyer_payments)
    (Array.fold_left ( +. ) 0.0 o.Da.seller_revenue)
    o.Da.surplus;
  Printf.printf "  feasible: %b\n\n" (Da.is_feasible graph o);

  Array.iteri
    (fun gi grp ->
      match grp.Da.channel with
      | Some j ->
          Printf.printf "  group %d wins channel %d: %d links, group bid %.2f\n" gi j
            (List.length grp.Da.members) grp.Da.group_bid;
          List.iter
            (fun v ->
              Printf.printf "    link %2d  bid %.2f  pays %.2f\n" v bids.(v)
                o.Da.buyer_payments.(v))
            grp.Da.members
      | None -> ())
    o.Da.groups
