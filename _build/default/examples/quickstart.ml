(* Quickstart: a complete secondary spectrum auction in ~60 lines.

   Scenario: 25 wireless links bid for 4 channels under the protocol
   interference model.  We build the conflict graph, solve the paper's LP
   relaxation, round it with Algorithm 1, and compare against the greedy
   baseline and the theoretical guarantee.

   Run with: dune exec examples/quickstart.exe *)

module Prng = Sa_util.Prng
module Placement = Sa_geom.Placement
module Link = Sa_wireless.Link
module Protocol = Sa_wireless.Protocol
module Inductive = Sa_graph.Inductive
module Vgen = Sa_val.Gen
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy

let () =
  let g = Prng.create ~seed:2026 in
  let n = 25 and k = 4 and delta = 1.0 in

  (* 1. Geometry: links (sender/receiver pairs) in a 10x10 km square. *)
  let links = Placement.random_links g ~n ~side:10.0 ~min_len:0.5 ~max_len:1.5 in
  let sys = Link.of_point_pairs links in

  (* 2. Interference: protocol-model conflict graph + the length ordering
        whose inductive independence is bounded by Proposition 9. *)
  let graph = Protocol.conflict_graph sys ~delta in
  let pi = Protocol.ordering sys in
  let rho_measured = (Inductive.rho_unweighted graph pi).Inductive.rho in
  let rho = Float.max 1.0 rho_measured in

  (* 3. Bidders: XOR bids on small channel bundles. *)
  let bidders =
    Array.init n (fun _ ->
        Vgen.random_xor g ~k ~bids:3 ~max_bundle:2 ~dist:(Vgen.Uniform (1.0, 10.0)))
  in
  let inst =
    Instance.make ~conflict:(Instance.Unweighted graph) ~k ~bidders ~ordering:pi ~rho
  in

  (* 4. Solve: LP relaxation, then randomized rounding (Algorithm 1).
        [solve] uses the paper's canonical rounding scale; [solve_adaptive]
        additionally tries more aggressive scales (same guarantee, much
        better typical welfare). *)
  let frac = Lp.solve_explicit inst in
  let canonical = Rounding.solve ~trials:16 g inst frac in
  let alloc = Rounding.solve_adaptive ~trials:8 g inst frac in
  let greedy = Greedy.by_value inst in

  Printf.printf "Secondary spectrum auction (protocol model)\n";
  Printf.printf "  links: %d   channels: %d   conflicts: %d edges\n" n k
    (Sa_graph.Graph.num_edges graph);
  Printf.printf "  measured rho(pi) = %.0f   (Prop 9 bound for delta=%.1f: %d)\n"
    rho_measured delta (Protocol.rho_bound ~delta);
  Printf.printf "  LP optimum (upper bound on welfare): %.3f\n" frac.Lp.objective;
  Printf.printf "  Algorithm 1 welfare (canonical scale): %.3f\n"
    (Allocation.value inst canonical);
  Printf.printf "  Algorithm 1 welfare (adaptive scale):  %.3f  (feasible: %b)\n"
    (Allocation.value inst alloc)
    (Allocation.is_feasible inst alloc);
  Printf.printf "  greedy baseline:     %.3f\n" (Allocation.value inst greedy);
  Printf.printf "  theoretical guarantee: within factor %.1f of the LP\n"
    (Rounding.guarantee inst);
  Printf.printf "\nAllocation metrics:\n";
  Format.printf "  %a" Sa_core.Metrics.pp (Sa_core.Metrics.compute inst alloc);
  Printf.printf "\nWinners:\n";
  Format.printf "%a" (Allocation.pp inst) alloc;

  let svg = Sa_viz.Render.links ~alloc ~title:"protocol-model auction" sys in
  Sa_viz.Render.write "quickstart.svg" svg;
  Printf.printf "deployment map written to quickstart.svg\n"
