bin/auction.ml: Arg Array Cmd Cmdliner Format List Printf Sa_core Sa_exp Sa_mech Sa_util Sa_val Sa_wireless Term
