bin/auction.mli:
