bin/experiments.mli:
