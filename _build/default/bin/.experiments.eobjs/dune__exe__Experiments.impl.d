bin/experiments.ml: Arg Cmd Cmdliner List Printf Sa_exp Term
