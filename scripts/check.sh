#!/bin/sh
# Repo health check: full build, test suite, an engine bench smoke run that
# validates BENCH_engine.json, kernels + construction + resilience +
# scheduler bench smoke runs (the scheduler smoke asserts the persistent
# domain pool is no slower per call than spawn-per-call and that the
# cross-job column pool preserves per-job results byte for byte), a
# pricing smoke (devex vs dantzig certified parity, workspace-reuse
# bitwise equality, and serve --pricing devex determinism across runs
# and domain counts), a fault-injection smoke (serve --fault-rate twice with the
# same seed and across domain counts must emit byte-identical per-job
# results, with every job served), and a telemetry smoke run that
# validates the serve --metrics-out snapshot (parses, hot-path counters
# nonzero, counter totals identical across domain counts), an
# observability smoke (same-seed --events-out logs byte-identical across
# runs and domain counts, --trace-out validates as Chrome Trace JSON),
# and an http smoke (serve --listen on an ephemeral port, /metrics and
# /healthz scraped with the in-tree raw-socket client).  Run from
# anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== format check (soft)"
if [ -f .ocamlformat ]; then
  dune build @fmt >/dev/null 2>&1 \
    || echo "   warning: dune build @fmt reports drift (non-fatal)"
else
  echo "   skipped: no .ocamlformat in repo"
fi

echo "== dune runtest"
dune runtest

echo "== bench smoke (engine group, quick mode)"
out="BENCH_engine.json"
rm -f "$out"
dune exec bench/main.exe -- --quick --engine-out "$out" >/dev/null

test -s "$out" || { echo "check: $out missing or empty" >&2; exit 1; }
for key in '"benchmark":"engine-batch"' '"cold":' '"warm":' '"warm_hit_rate":' \
           '"lp_speedup_warm_over_cold":' '"pivot_ratio_cold_over_warm":'; do
  grep -q -- "$key" "$out" || { echo "check: $out lacks $key" >&2; exit 1; }
done

echo "== kernels smoke (bench kernels, quick mode)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
kout="$tmpdir/kernels.json"
dune exec bench/main.exe -- kernels --quick --domains 4 \
  --kernels-out "$kout" >/dev/null

test -s "$kout" || { echo "check: $kout missing or empty" >&2; exit 1; }
for key in '"benchmark":"kernels"' '"graph":' '"is_independent":' '"lp":' \
           '"pipeline":' '"sparse_d1":' '"sparse_dN":' '"alloc_bytes":' \
           '"speedup_sparse_over_dense":' '"scaling_dN_over_d1":'; do
  grep -q -- "$key" "$kout" || { echo "check: $kout lacks $key" >&2; exit 1; }
done

# the sparse bitset kernel must not be slower than the dense reference on
# the n>=200 graph case, and it must agree with it
gspeed="$(grep -o '"is_independent":{[^}]*}' "$kout" \
  | sed -n 's/.*"speedup":\([0-9.]*\).*/\1/p')"
test -n "$gspeed" || { echo "check: $kout lacks graph speedup" >&2; exit 1; }
awk "BEGIN{exit !($gspeed >= 1.0)}" \
  || { echo "check: bitset kernel slower than dense ($gspeed x)" >&2; exit 1; }
grep -q '"agree":true' "$kout" \
  || { echo "check: bitset kernel disagrees with dense reference" >&2; exit 1; }

# dense and sparse pipelines must certify the identical LP objective
# (column counts may differ by degenerate dual ties on the small quick
# instance; the full-size run in the committed BENCH_kernels.json has
# exact column parity too)
grep -q '"columns_equal":' "$kout" \
  || { echo "check: $kout lacks parity block" >&2; exit 1; }
grep -q '"objective_delta":0.000000000' "$kout" \
  || { echo "check: pipeline objectives differ dense vs sparse" >&2; exit 1; }

# allocation telemetry must be reported for both domain counts; diff them
a1="$(grep -o '"sparse_d1":{[^{]*' "$kout" | grep -o '"alloc_bytes":[0-9]*')"
aN="$(grep -o '"sparse_dN":{[^{]*' "$kout" | grep -o '"alloc_bytes":[0-9]*')"
test -n "$a1" && test -n "$aN" \
  || { echo "check: $kout lacks alloc_bytes for d1/dN" >&2; exit 1; }
echo "   kernels: graph speedup ${gspeed}x; domains 1 ${a1#*:} B vs domains 4 ${aN#*:} B allocated"

# multi-domain oracle pricing must not regress versus one domain — but the
# comparison is only meaningful when the host actually has cores to scale
# onto, so skip it when the runtime recommends a single domain
rdom="$(sed -n 's/.*"recommended_domains":\([0-9]*\).*/\1/p' "$kout" | head -n 1)"
test -n "$rdom" || { echo "check: $kout lacks recommended_domains" >&2; exit 1; }
scaling="$(sed -n 's/.*"scaling_dN_over_d1":\([0-9.]*\).*/\1/p' "$kout" | head -n 1)"
if [ "$rdom" -gt 1 ]; then
  test -n "$scaling" || { echo "check: $kout lacks scaling ratio" >&2; exit 1; }
  awk "BEGIN{exit !($scaling >= 1.0)}" \
    || { echo "check: dN pricing slower than d1 (${scaling}x, $rdom domains)" >&2; exit 1; }
  echo "   kernels: dN over d1 scaling ${scaling}x with $rdom recommended domains"
else
  echo "   scaling assertion skipped (recommended_domains=$rdom)"
fi

echo "== construction smoke (bench construction, quick mode)"
cout="$tmpdir/construction.json"
dune exec bench/main.exe -- construction --quick --construction-out "$cout" >/dev/null

test -s "$cout" || { echo "check: $cout missing or empty" >&2; exit 1; }
for key in '"benchmark":"construction"' '"recommended_domains":' '"disk":' \
           '"thm13":' '"max_dropped_in_bound":'; do
  grep -q -- "$key" "$cout" || { echo "check: $cout lacks $key" >&2; exit 1; }
done

# the grid construction must agree with the naive reference everywhere and
# must not be slower than it on the n=1000 disk case
if grep -q '"agree":false' "$cout"; then
  echo "check: grid construction disagrees with naive reference" >&2; exit 1
fi
d1000="$(grep -o '"n":1000,[^{]*' "$cout")"
test -n "$d1000" || { echo "check: $cout lacks disk n=1000 case" >&2; exit 1; }
cspeed="$(printf '%s' "$d1000" | sed -n 's/.*"speedup":\([0-9.]*\).*/\1/p')"
test -n "$cspeed" || { echo "check: disk n=1000 case lacks speedup" >&2; exit 1; }
awk "BEGIN{exit !($cspeed >= 1.0)}" \
  || { echo "check: grid disk construction slower than naive (${cspeed}x)" >&2; exit 1; }
echo "   construction: disk n=1000 grid speedup ${cspeed}x, parity holds"

echo "== resilience bench smoke (bench resilience, quick mode)"
rbout="$tmpdir/resilience.json"
dune exec bench/main.exe -- resilience --quick --resilience-out "$rbout" >/dev/null

test -s "$rbout" || { echo "check: $rbout missing or empty" >&2; exit 1; }
for key in '"benchmark":"resilience"' '"baseline":' '"rate_025":' '"rate_050":' \
           '"wall_overhead_050_over_baseline":' '"faults_injected":'; do
  grep -q -- "$key" "$rbout" || { echo "check: $rbout lacks $key" >&2; exit 1; }
done
# under a 50% fault rate the fallback chain must still serve every job,
# and a same-seed re-run must reproduce the identical per-job results
grep -q '"all_jobs_served_at_050":true' "$rbout" \
  || { echo "check: jobs failed at fault rate 0.5" >&2; exit 1; }
grep -q '"same_seed_deterministic":true' "$rbout" \
  || { echo "check: fault injection not reproducible" >&2; exit 1; }

echo "== resilience smoke (serve --fault-rate, same-seed + cross-domain diff)"
rwl="examples/resilience.wl"
dune exec bin/auction.exe -- serve --workload "$rwl" --no-warm \
  --fault-rate 0.3 --fault-seed 7 --results-out "$tmpdir/r1.json" >/dev/null
dune exec bin/auction.exe -- serve --workload "$rwl" --no-warm \
  --fault-rate 0.3 --fault-seed 7 --results-out "$tmpdir/r2.json" >/dev/null
cmp "$tmpdir/r1.json" "$tmpdir/r2.json" \
  || { echo "check: same-seed fault runs produced different results" >&2; exit 1; }
dune exec bin/auction.exe -- serve --workload "$rwl" --no-warm --domains 4 \
  --fault-rate 0.3 --fault-seed 7 --results-out "$tmpdir/r4.json" >/dev/null
cmp "$tmpdir/r1.json" "$tmpdir/r4.json" \
  || { echo "check: fault results differ between --domains 1 and 4" >&2; exit 1; }
# the fallback chain must leave no job unserved at this rate...
if grep -q '"status":"failed"' "$tmpdir/r1.json"; then
  echo "check: serve --fault-rate 0.3 left failed jobs" >&2; exit 1
fi
# ...and the injected faults must actually push jobs off the LP tier
grep -Eq '"tier":"(greedy|online)"' "$tmpdir/r1.json" \
  || { echo "check: no job degraded to a fallback tier at rate 0.3" >&2; exit 1; }
echo "   resilience: same-seed and cross-domain results byte-identical"

echo "== scheduler smoke (bench scheduler, quick mode)"
sout="$tmpdir/scheduler.json"
dune exec bench/main.exe -- scheduler --quick --domains 4 \
  --scheduler-out "$sout" >/dev/null

test -s "$sout" || { echo "check: $sout missing or empty" >&2; exit 1; }
for key in '"benchmark":"scheduler"' '"small_batch":' '"skewed":' \
           '"column_pool":' '"spawn_per_call_us":' '"pool_per_call_us":' \
           '"ratio_static_over_adaptive":' '"rounds_saved":'; do
  grep -q -- "$key" "$sout" || { echo "check: $sout lacks $key" >&2; exit 1; }
done
# the persistent pool must not be slower per call than spawn-per-call, and
# every parity / determinism flag must hold
pspeed="$(sed -n 's/.*"speedup_pool_over_spawn":\([0-9.]*\).*/\1/p' "$sout" | head -n 1)"
test -n "$pspeed" || { echo "check: $sout lacks pool speedup" >&2; exit 1; }
awk "BEGIN{exit !($pspeed >= 1.0)}" \
  || { echo "check: pool slower than spawn-per-call (${pspeed}x)" >&2; exit 1; }
if grep -q '"parity":false' "$sout"; then
  echo "check: scheduler produced wrong results" >&2; exit 1
fi
grep -q '"objectives_bitwise_equal":true' "$sout" \
  || { echo "check: seeded colgen objectives differ from cold" >&2; exit 1; }
grep -q '"results_bytes_identical":true' "$sout" \
  || { echo "check: column-pool results differ from cold solve" >&2; exit 1; }
if grep -q '"same_seed_deterministic":false' "$sout"; then
  echo "check: column-pool runs not reproducible" >&2; exit 1
fi
echo "   scheduler: pool ${pspeed}x vs spawn-per-call, column-pool parity holds"

echo "== pricing smoke (bench pricing, quick mode)"
pout="$tmpdir/pricing.json"
dune exec bench/main.exe -- pricing --quick --pricing-out "$pout" >/dev/null

test -s "$pout" || { echo "check: $pout missing or empty" >&2; exit 1; }
for key in '"benchmark":"pricing"' '"dantzig":' '"devex":' \
           '"devex_pivot_savings":' '"objective_delta":' '"workspace":' \
           '"alloc_ratio_fresh_over_reuse":'; do
  grep -q -- "$key" "$pout" || { echo "check: $pout lacks $key" >&2; exit 1; }
done
# both rules must certify their optimum, devex must not pivot more than
# dantzig, and arena reuse must be bitwise-equal while allocating less
grep -q '"certified_parity":true' "$pout" \
  || { echo "check: pricing rules failed certified parity" >&2; exit 1; }
grep -q '"bitwise_equal":true' "$pout" \
  || { echo "check: workspace reuse changed solve results" >&2; exit 1; }
psave="$(sed -n 's/.*"devex_pivot_savings":\(-\{0,1\}[0-9.]*\).*/\1/p' "$pout" | head -n 1)"
test -n "$psave" || { echo "check: $pout lacks pivot savings" >&2; exit 1; }
awk "BEGIN{exit !($psave >= 0.0)}" \
  || { echo "check: devex pivoted more than dantzig (savings $psave)" >&2; exit 1; }
pratio="$(sed -n 's/.*"alloc_ratio_fresh_over_reuse":\([0-9.]*\).*/\1/p' "$pout" | head -n 1)"
test -n "$pratio" || { echo "check: $pout lacks alloc ratio" >&2; exit 1; }
awk "BEGIN{exit !($pratio >= 1.0)}" \
  || { echo "check: arena reuse allocated more than fresh (${pratio}x)" >&2; exit 1; }
echo "   pricing: devex saves ${psave} of pivots, reuse allocates ${pratio}x less"

echo "== pricing smoke (serve --pricing devex determinism)"
dune exec bin/auction.exe -- serve --demo --no-warm --pricing devex \
  --results-out "$tmpdir/pv1.json" >/dev/null
dune exec bin/auction.exe -- serve --demo --no-warm --pricing devex \
  --results-out "$tmpdir/pv2.json" >/dev/null
cmp "$tmpdir/pv1.json" "$tmpdir/pv2.json" \
  || { echo "check: devex serve runs not reproducible" >&2; exit 1; }
dune exec bin/auction.exe -- serve --demo --no-warm --pricing devex --domains 4 \
  --results-out "$tmpdir/pv4.json" >/dev/null
cmp "$tmpdir/pv1.json" "$tmpdir/pv4.json" \
  || { echo "check: devex results differ between --domains 1 and 4" >&2; exit 1; }
echo "   pricing: devex serve results byte-identical across runs and domains"

echo "== presolve smoke (bench presolve, quick mode)"
prout="$tmpdir/presolve.json"
dune exec bench/main.exe -- presolve --quick --presolve-out "$prout" >/dev/null

test -s "$prout" || { echo "check: $prout missing or empty" >&2; exit 1; }
for key in '"benchmark":"presolve"' '"reduction":' '"dantzig":' '"devex":' \
           '"colgen":' '"pivot_savings":'; do
  grep -q -- "$key" "$prout" || { echo "check: $prout lacks $key" >&2; exit 1; }
done
# the reductions must fire (the bench instance is duplicate-heavy by
# construction) and every off/on pair must certify the same optimum
grep -q '"certified_parity":true' "$prout" \
  || { echo "check: presolve off/on failed certified parity" >&2; exit 1; }
prrows="$(sed -n 's/.*"rows_removed":\([0-9]*\).*/\1/p' "$prout" | head -n 1)"
test -n "$prrows" || { echo "check: $prout lacks rows_removed" >&2; exit 1; }
awk "BEGIN{exit !($prrows > 0)}" \
  || { echo "check: presolve removed no rows (rows_removed $prrows)" >&2; exit 1; }
echo "   presolve: $prrows rows removed, certified parity holds"

echo "== presolve smoke (serve --presolve objective parity + determinism)"
dune exec bin/auction.exe -- serve --demo --no-warm --presolve off \
  --json "$tmpdir/pr_off.json" >/dev/null
dune exec bin/auction.exe -- serve --demo --no-warm --presolve on \
  --json "$tmpdir/pr_on.json" --results-out "$tmpdir/pr1.json" >/dev/null
obj_off="$(sed -n 's/.*"total_lp_objective":\(-\{0,1\}[0-9.]*\).*/\1/p' "$tmpdir/pr_off.json" | head -n 1)"
obj_on="$(sed -n 's/.*"total_lp_objective":\(-\{0,1\}[0-9.]*\).*/\1/p' "$tmpdir/pr_on.json" | head -n 1)"
test -n "$obj_off" && test -n "$obj_on" \
  || { echo "check: serve summary lacks total_lp_objective" >&2; exit 1; }
awk "BEGIN{d = $obj_off - $obj_on; if (d < 0) d = -d; \
           s = $obj_off; if (s < 0) s = -s; exit !(d <= 1e-6 * (1 + s))}" \
  || { echo "check: presolve changed the LP objective ($obj_off vs $obj_on)" >&2; exit 1; }
dune exec bin/auction.exe -- serve --demo --no-warm --presolve on --domains 4 \
  --results-out "$tmpdir/pr4.json" >/dev/null
cmp "$tmpdir/pr1.json" "$tmpdir/pr4.json" \
  || { echo "check: presolve results differ between --domains 1 and 4" >&2; exit 1; }
echo "   presolve: objectives agree off/on ($obj_off), results byte-identical across domains"

echo "== column pool smoke (serve byte-identity, pool on vs --no-column-pool)"
cwl="examples/columns.wl"
dune exec bin/auction.exe -- serve --workload "$cwl" --no-warm \
  --results-out "$tmpdir/cp_on.json" >/dev/null
dune exec bin/auction.exe -- serve --workload "$cwl" --no-warm --no-column-pool \
  --results-out "$tmpdir/cp_off.json" >/dev/null
cmp "$tmpdir/cp_on.json" "$tmpdir/cp_off.json" \
  || { echo "check: column pool changed per-job results" >&2; exit 1; }
dune exec bin/auction.exe -- serve --workload "$cwl" --no-warm --domains 4 \
  --results-out "$tmpdir/cp_d4.json" >/dev/null
cmp "$tmpdir/cp_on.json" "$tmpdir/cp_d4.json" \
  || { echo "check: column-pool results differ between --domains 1 and 4" >&2; exit 1; }
echo "   column pool: results byte-identical with pool on/off and across domains"

echo "== telemetry smoke (serve --demo --metrics-out)"
snap="$tmpdir/metrics.json"
dune exec bin/auction.exe -- serve --demo --metrics-out "$snap" >/dev/null

# the snapshot must parse back (auction metrics re-reads it with the
# in-tree JSON parser and exits nonzero on any malformation)
dune exec bin/auction.exe -- metrics "$snap" >/dev/null

# hot-path counters the demo workload must have exercised
for counter in '"lp.revised.pivots": *[1-9]' \
               '"engine.basis.lookups": *[1-9]' \
               '"engine.topology.hits": *[1-9]' \
               '"core.rounding.trials": *[1-9]'; do
  grep -Eq -- "$counter" "$snap" \
    || { echo "check: $snap lacks nonzero $counter" >&2; exit 1; }
done
# schema completeness: pre-registered even when the path never ran
grep -q '"core.colgen.oracle_calls":' "$snap" \
  || { echo "check: $snap lacks core.colgen.oracle_calls" >&2; exit 1; }

echo "== telemetry determinism (counters identical across --domains 1/4)"
dune exec bin/auction.exe -- serve --demo --no-warm --domains 1 \
  --metrics-out "$tmpdir/d1.json" >/dev/null
dune exec bin/auction.exe -- serve --demo --no-warm --domains 4 \
  --metrics-out "$tmpdir/d4.json" >/dev/null
# engine.pool.* counters are scheduler occupancy, not algorithmic work:
# a --domains 1 run bypasses the pool entirely and chunk/steal counts are
# timing-dependent, so they are excluded from the determinism diff.
# lp.workspace.* counters track per-domain arena capacity (one scratch
# arena per domain grows independently), so they too depend on the
# domain count without affecting any solve result.
sed -n '/"counters": {/,/^  },/p' "$tmpdir/d1.json" \
  | grep -v -e '"engine\.pool\.' -e '"lp\.workspace\.' > "$tmpdir/c1"
sed -n '/"counters": {/,/^  },/p' "$tmpdir/d4.json" \
  | grep -v -e '"engine\.pool\.' -e '"lp\.workspace\.' > "$tmpdir/c4"
test -s "$tmpdir/c1" || { echo "check: counter block extraction failed" >&2; exit 1; }
cmp "$tmpdir/c1" "$tmpdir/c4" \
  || { echo "check: counters differ between --domains 1 and 4" >&2; exit 1; }

echo "== observability smoke (event log determinism + chrome trace)"
dune exec bin/auction.exe -- serve --demo --no-warm \
  --events-out "$tmpdir/e1.jsonl" --trace-out "$tmpdir/t1.json" >/dev/null
dune exec bin/auction.exe -- serve --demo --no-warm \
  --events-out "$tmpdir/e2.jsonl" >/dev/null
cmp "$tmpdir/e1.jsonl" "$tmpdir/e2.jsonl" \
  || { echo "check: same-seed event logs differ" >&2; exit 1; }
dune exec bin/auction.exe -- serve --demo --no-warm --domains 4 \
  --events-out "$tmpdir/e4.jsonl" >/dev/null
cmp "$tmpdir/e1.jsonl" "$tmpdir/e4.jsonl" \
  || { echo "check: event logs differ between --domains 1 and 4" >&2; exit 1; }
test -s "$tmpdir/e1.jsonl" \
  || { echo "check: event log is empty" >&2; exit 1; }
for kind in job_accepted lp_solved tier_chosen guarantee_certified; do
  grep -q "\"kind\":\"$kind\"" "$tmpdir/e1.jsonl" \
    || { echo "check: event log lacks $kind events" >&2; exit 1; }
done
# the chrome trace must parse as valid Trace Event JSON (in-tree validator)
dune exec bin/auction.exe -- trace "$tmpdir/t1.json" >/dev/null \
  || { echo "check: chrome trace failed validation" >&2; exit 1; }
echo "   observability: event logs byte-identical, chrome trace valid"

echo "== http smoke (auction serve --listen, raw-socket scrape)"
# run the built binary directly so the background server does not hold the
# dune build lock; port 0 picks an ephemeral port printed on stdout
srvlog="$tmpdir/serve.log"
./_build/default/bin/auction.exe serve --demo --listen 0 > "$srvlog" 2>&1 &
srvpid=$!
port=""
for _ in $(seq 1 50); do
  if grep -q 'serving /metrics /healthz /jobs' "$srvlog"; then
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$srvlog" | head -n 1)"
    break
  fi
  sleep 0.2
done
test -n "$port" \
  || { kill "$srvpid" 2>/dev/null; echo "check: serve --listen never came up" >&2; exit 1; }
hz="$tmpdir/healthz.txt"
mtx="$tmpdir/scrape.txt"
./_build/default/bin/auction.exe get --port "$port" /healthz > "$hz" \
  || { kill "$srvpid" 2>/dev/null; echo "check: /healthz scrape failed" >&2; exit 1; }
grep -q '^ok$' "$hz" \
  || { kill "$srvpid" 2>/dev/null; echo "check: /healthz body wrong" >&2; exit 1; }
./_build/default/bin/auction.exe get --port "$port" /metrics > "$mtx" \
  || { kill "$srvpid" 2>/dev/null; echo "check: /metrics scrape failed" >&2; exit 1; }
for metric in specauction_engine_jobs specauction_lp_revised_pivots \
              specauction_engine_job_retries specauction_telemetry_events_logged; do
  grep -q "^$metric " "$mtx" \
    || { kill "$srvpid" 2>/dev/null; echo "check: /metrics lacks $metric" >&2; exit 1; }
done
grep -q '^# HELP specauction_engine_jobs ' "$mtx" \
  || { kill "$srvpid" 2>/dev/null; echo "check: /metrics lacks HELP lines" >&2; exit 1; }
if ./_build/default/bin/auction.exe get --port "$port" /nothere >/dev/null 2>&1; then
  kill "$srvpid" 2>/dev/null
  echo "check: unknown path did not 404" >&2; exit 1
fi
kill "$srvpid" 2>/dev/null
wait "$srvpid" 2>/dev/null || true
echo "   http: /metrics and /healthz served on ephemeral port $port"

echo "check: OK ($out and telemetry snapshot well-formed)"
