#!/bin/sh
# Repo health check: full build, test suite, and an engine bench smoke run
# that validates BENCH_engine.json.  Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== bench smoke (engine group, quick mode)"
out="BENCH_engine.json"
rm -f "$out"
dune exec bench/main.exe -- --quick --engine-out "$out" >/dev/null

test -s "$out" || { echo "check: $out missing or empty" >&2; exit 1; }
for key in '"benchmark":"engine-batch"' '"cold":' '"warm":' '"warm_hit_rate":' \
           '"lp_speedup_warm_over_cold":' '"pivot_ratio_cold_over_warm":'; do
  grep -q -- "$key" "$out" || { echo "check: $out lacks $key" >&2; exit 1; }
done

echo "check: OK ($out well-formed)"
