#!/bin/sh
# Repo health check: full build, test suite, an engine bench smoke run that
# validates BENCH_engine.json, and a telemetry smoke run that validates the
# serve --metrics-out snapshot (parses, hot-path counters nonzero, counter
# totals identical across domain counts).  Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== bench smoke (engine group, quick mode)"
out="BENCH_engine.json"
rm -f "$out"
dune exec bench/main.exe -- --quick --engine-out "$out" >/dev/null

test -s "$out" || { echo "check: $out missing or empty" >&2; exit 1; }
for key in '"benchmark":"engine-batch"' '"cold":' '"warm":' '"warm_hit_rate":' \
           '"lp_speedup_warm_over_cold":' '"pivot_ratio_cold_over_warm":'; do
  grep -q -- "$key" "$out" || { echo "check: $out lacks $key" >&2; exit 1; }
done

echo "== telemetry smoke (serve --demo --metrics-out)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
snap="$tmpdir/metrics.json"
dune exec bin/auction.exe -- serve --demo --metrics-out "$snap" >/dev/null

# the snapshot must parse back (auction metrics re-reads it with the
# in-tree JSON parser and exits nonzero on any malformation)
dune exec bin/auction.exe -- metrics "$snap" >/dev/null

# hot-path counters the demo workload must have exercised
for counter in '"lp.revised.pivots": *[1-9]' \
               '"engine.basis.lookups": *[1-9]' \
               '"engine.topology.hits": *[1-9]' \
               '"core.rounding.trials": *[1-9]'; do
  grep -Eq -- "$counter" "$snap" \
    || { echo "check: $snap lacks nonzero $counter" >&2; exit 1; }
done
# schema completeness: pre-registered even when the path never ran
grep -q '"core.colgen.oracle_calls":' "$snap" \
  || { echo "check: $snap lacks core.colgen.oracle_calls" >&2; exit 1; }

echo "== telemetry determinism (counters identical across --domains 1/4)"
dune exec bin/auction.exe -- serve --demo --no-warm --domains 1 \
  --metrics-out "$tmpdir/d1.json" >/dev/null
dune exec bin/auction.exe -- serve --demo --no-warm --domains 4 \
  --metrics-out "$tmpdir/d4.json" >/dev/null
sed -n '/"counters": {/,/^  },/p' "$tmpdir/d1.json" > "$tmpdir/c1"
sed -n '/"counters": {/,/^  },/p' "$tmpdir/d4.json" > "$tmpdir/c4"
test -s "$tmpdir/c1" || { echo "check: counter block extraction failed" >&2; exit 1; }
cmp "$tmpdir/c1" "$tmpdir/c4" \
  || { echo "check: counters differ between --domains 1 and 4" >&2; exit 1; }

echo "check: OK ($out and telemetry snapshot well-formed)"
