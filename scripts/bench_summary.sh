#!/bin/sh
# Aggregate every BENCH_*.json in the repo root into one BENCH_summary.json
# keyed by benchmark group name ("engine-batch", "kernels", "pricing", ...).
# Each group file is a single JSON object with a "benchmark" field (the
# emission convention in bench/bench_util.ml).  A malformed group file —
# empty, or missing the "benchmark" field — aborts with a non-zero exit
# naming the offending file, so a truncated bench run cannot silently
# vanish from the summary.  Only the summary itself is skipped.  Usage:
#
#   scripts/bench_summary.sh [OUT]     # default OUT = BENCH_summary.json
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_summary.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

first=1
{
  printf '{'
  for f in BENCH_*.json; do
    [ -e "$f" ] || continue                    # unexpanded glob
    [ "$f" = "$(basename "$out")" ] && continue
    [ -s "$f" ] || { echo "bench_summary: malformed $f (empty file)" >&2; exit 1; }
    group="$(sed -n 's/.*"benchmark":"\([^"]*\)".*/\1/p' "$f" | head -n 1)"
    [ -n "$group" ] || {
      echo "bench_summary: malformed $f (no \"benchmark\" field)" >&2
      exit 1
    }
    [ $first -eq 1 ] || printf ','
    first=0
    printf '"%s":' "$group"
    tr -d '\n' < "$f"
  done
  printf '}\n'
} > "$tmp"

if [ $first -eq 1 ]; then
  echo "bench_summary: no BENCH_*.json groups found" >&2
  exit 1
fi

mv "$tmp" "$out"
trap - EXIT
groups="$(grep -o '"benchmark":"[^"]*"' "$out" | sed 's/.*:"\(.*\)"/\1/' | tr '\n' ' ')"
echo "bench_summary: wrote $out ($(wc -c < "$out" | tr -d ' ') bytes): $groups"
