# Disk-model workload for the resilience acceptance runs (DESIGN.md §9):
#   auction serve --workload examples/resilience.wl --fault-rate 0.5 ...
# Mixed algorithms and repeat counts so fault injection exercises the
# warm-start path, both rounding families, and the greedy/online fallbacks.
specauction-workload 1
batch model=disk n=18 k=3 seed=41 algorithm=adaptive trials=3 repeat=6
batch model=disk n=14 k=2 seed=42 algorithm=lp-round repeat=5
batch model=disk n=16 k=3 seed=43 algorithm=greedy-lp repeat=4
batch model=protocol n=12 k=2 seed=44 algorithm=adaptive repeat=3
end
