# Repeated-topology column-generation workload for the cross-job column
# pool acceptance runs (DESIGN.md §10):
#   auction serve --workload examples/columns.wl [--no-column-pool] ...
# Every batch repeats one clique-conflict topology with unchanged bids
# (revalue=false), so later jobs hit the pool under the same conflict
# fingerprint and seed their restricted master from the first solve's
# columns -- with byte-identical per-job results either way.
specauction-workload 1
batch model=clique n=24 k=4 seed=9 algorithm=oracle repeat=6 revalue=false
batch model=clique n=20 k=4 seed=13 algorithm=oracle repeat=4 revalue=false
batch model=clique n=16 k=3 seed=5 algorithm=oracle repeat=4 revalue=false
end
